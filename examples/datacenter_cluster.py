"""Figure-6(b) walkthrough: when SOFR misleads a datacenter operator.

A cluster of identical servers runs a diurnal workload (busy by day,
idle by night — the paper's `day` pattern). Each node's 12.5MB of
vulnerable state sees ~1 raw soft error per year. The whole cluster-size
sweep is one ``evaluate_design_space`` call: the batch engine memoizes
the node-level Monte-Carlo MTTF (the SOFR step re-uses it at every
cluster size) and compares SOFR against the exact first-failure
behaviour and Monte Carlo at each point. The exponentiality diagnostics
then show exactly why SOFR breaks: the masked time to failure stops
being exponential.

Run:  python examples/datacenter_cluster.py
"""

from repro import (
    Component,
    ComponentCache,
    MonteCarloConfig,
    SystemModel,
    evaluate_design_space,
)
from repro.core.montecarlo import sample_system_ttf
from repro.reliability import FailureProcess, exponentiality_report
from repro.units import SECONDS_PER_DAY
from repro.workloads import day_workload

#: N = 1e8 bits/node at the 1e-8 errors/year/bit baseline = 1/year.
RATE_PER_SECOND = 1.0 / (365.25 * 86400)

CLUSTER_SIZES = (8, 500, 5_000, 50_000, 500_000)


def cluster(profile, size: int) -> SystemModel:
    return SystemModel(
        [Component("node", RATE_PER_SECOND, profile, multiplicity=size)]
    )


def main() -> None:
    profile = day_workload()
    cache = ComponentCache()
    space = [
        (f"{size} nodes", cluster(profile, size))
        for size in CLUSTER_SIZES
    ]
    results = evaluate_design_space(
        space,
        methods=["sofr_only", "first_principles"],
        reference="monte_carlo",
        mc_config=MonteCarloConfig(trials=100_000, seed=2),
        cache=cache,
    )
    print(
        f"single node: raw rate 1/year, AVF {profile.avf:.2f} "
        f"(node MTTF memoized: {cache.misses} Monte-Carlo run for "
        f"{len(CLUSTER_SIZES)} cluster sizes)"
    )
    print()
    header = (
        f"{'nodes':>8s} {'SOFR (h)':>10s} {'exact (h)':>10s} "
        f"{'MC (h)':>10s} {'SOFR error':>11s} {'TTF CoV':>8s}"
    )
    print(header)
    print("-" * len(header))
    for size, comparison in zip(CLUSTER_SIZES, results):
        sofr = comparison.estimates["sofr_only"].mttf_seconds
        exact = comparison.estimates["first_principles"].mttf_seconds
        monte = comparison.reference.mttf_seconds
        cov = FailureProcess(
            cluster(profile, size).combined_intensity()
        ).coefficient_of_variation()
        error = (sofr - exact) / exact
        print(
            f"{size:>8d} {sofr / 3600:>10.2f} {exact / 3600:>10.2f} "
            f"{monte / 3600:>10.2f} {error:>+11.1%} {cov:>8.2f}"
        )
    print()

    # Why SOFR breaks: diurnal masking bends the time-to-failure
    # distribution away from exponential. The distortion peaks where
    # the MTTF spans a few day/night cycles (here ~2000 nodes); at
    # extreme scale failures collapse into the first busy morning and
    # the distribution degenerates again.
    system = cluster(profile, 2_000)
    samples = sample_system_ttf(
        system, MonteCarloConfig(trials=50_000, seed=3)
    )
    report = exponentiality_report(samples)
    cov = FailureProcess(
        system.combined_intensity()
    ).coefficient_of_variation()
    print(
        f"2000-node cluster TTF: exact CoV={cov:.2f} (exponential would "
        f"be 1.00), KS distance={report.ks_distance:.3f} -> "
        f"looks_exponential={report.looks_exponential}"
    )
    print(
        "SOFR assumes exponential component lifetimes (Section 2.3); "
        "diurnal masking violates that at scale, which is the paper's "
        "central warning."
    )


if __name__ == "__main__":
    main()
