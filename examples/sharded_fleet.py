"""A two-machine sweep as one work-conserving fleet.

The sweep below is the classic awkward shape for a sharded run: one
grid point (a tiny two-node cluster with a huge MTTF) needs far more
Monte-Carlo trials than its siblings to reach the precision target,
while the big clusters converge after a single chunk. Split round-robin
across two machines, the straggler lands on shard 0 — and without
coordination, the budget shard 1's easy points free is stranded on
shard 1.

The cross-shard budget ledger fixes that: both shards point at one
ledger file inside the shared cache directory, publish the budget
their early stoppers free, and claim it for the fleet's least-converged
point at deterministic fleet barriers. This script plays both machines
(two threads standing in for two hosts), merges the shard artifacts,
audits the ledger, and then *replays* shard 0 from the completed ledger
to show the whole schedule is deterministic given the ledger contents.

The CLI equivalent is the EXPERIMENTS.md "sharded fleet" recipe::

    repro-experiments fig5 --shard 0/2 --cache-dir /shared/cache \\
        --target-stderr 0.02 --reallocate-budget \\
        --budget-ledger run1 --json shard0.json &
    repro-experiments fig5 --shard 1/2 ... --budget-ledger run1 ...

Run:  python examples/sharded_fleet.py
"""

import tempfile
import threading

from repro import (
    BudgetLedger,
    Component,
    MonteCarloConfig,
    StoppingRule,
    SystemModel,
    evaluate_design_space,
    ledger_path,
    merge_result_sets,
)
from repro.methods import LedgerState
from repro.units import SECONDS_PER_DAY
from repro.workloads import day_workload

#: ~2 raw errors/day/node on the diurnal workload.
RATE_PER_SECOND = 2.0 / SECONDS_PER_DAY

#: The C=2 point (global index 0 -> shard 0) is the straggler: its MTTF
#: is ~500x the big clusters', so the absolute half-width target takes
#: far more trials there.
CLUSTER_SIZES = (2, 8, 100, 300, 1000)

MC = MonteCarloConfig(
    trials=8_000,
    seed=3,
    chunks=8,
    stopping=StoppingRule(target_ci_halfwidth=250.0),
)


def build_space(profile):
    return [
        (
            f"C={size}",
            SystemModel(
                [
                    Component(
                        "node", RATE_PER_SECOND, profile,
                        multiplicity=size,
                    )
                ]
            ),
        )
        for size in CLUSTER_SIZES
    ]


def run_shard(space, index, count, ledger_file, out, replay=False):
    """One machine's share of the sweep, coordinated via the ledger."""
    out[index] = evaluate_design_space(
        space,
        methods=["first_principles"],
        mc_config=MC,
        shard=(index, count),
        pipeline_methods=True,
        reallocate_budget=True,
        budget_ledger=BudgetLedger(
            ledger_file, shard=(index, count), replay=replay,
            poll_interval=0.01, timeout=60.0,
        ),
    )
    return out[index]


def main() -> None:
    space = build_space(day_workload())
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as cache_dir:
        ledger_file = ledger_path(cache_dir, "demo")

        # A shard-local baseline: what shard 0 achieves when the budget
        # freed on the *other* machine never reaches it.
        local = evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=MC,
            shard=(0, 2),
            reallocate_budget=True,
        )

        # "Machine A" and "machine B", co-running against one ledger.
        shards: list = [None, None]
        threads = [
            threading.Thread(
                target=run_shard,
                args=(space, index, 2, ledger_file, shards),
            )
            for index in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_result_sets(shards)

        print("sharded fleet: 2 co-running shards, one budget ledger")
        print(f"  precision target: CI half-width <= "
              f"{MC.stopping.target_ci_halfwidth:g} s")
        trials = merged.reference_trials()
        local_trials = local.reference_trials()
        for label in merged.labels:
            note = ""
            if label in local_trials and trials[label] > (
                local_trials[label]
            ):
                note = (
                    f"  <- straggler: {local_trials[label]} trials "
                    "shard-local, cross-shard budget bought "
                    f"{trials[label] - local_trials[label]} more"
                )
            print(f"  {label:8s} {trials[label]:7d} trials{note}")

        totals = LedgerState.scan(ledger_file, 2).totals()
        print(
            f"  ledger audit: {totals['freed_trials']} trials freed, "
            f"{totals['claimed_trials']} claimed over "
            f"{totals['rounds']} rounds (claimed <= freed: budget "
            "conserved)"
        )

        # Determinism: replay shard 0 from the completed ledger — no
        # waiting, no co-runner — and reproduce its live result
        # bit-for-bit.
        replayed: list = [None]
        run_shard(space, 0, 2, ledger_file, replayed, replay=True)
        assert replayed[0] == shards[0], "replay must be bit-identical"
        print(
            "  replay of shard 0 from the ledger is bit-identical to "
            "the live run"
        )
        print(f"  artifacts merge to {len(merged)} points "
              f"(mc_token ...{merged.mc_token[-8:]})")


if __name__ == "__main__":
    main()
