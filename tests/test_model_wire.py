"""Model wire-format tests: lossless JSON round trips.

The analysis service ships system models over HTTP, so
``Component``/``SystemModel``/profile serialization must be *lossless
in the fingerprint sense*: rebuilding a model from its wire form must
reproduce the exact ``content_fingerprint``, or HTTP-submitted jobs
would miss the content-addressed caches (and request dedup) that
in-process runs hit.
"""

import json
import math

import pytest

from repro.core import Component, SystemModel
from repro.core.system import SYSTEM_SCHEMA
from repro.errors import ConfigurationError, ProfileError
from repro.masking import (
    NestedProfile,
    PiecewiseProfile,
    busy_idle_profile,
    profile_from_dict,
)
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def nested_profile(day_profile, fractional_profile) -> NestedProfile:
    return NestedProfile(
        [
            (2 * SECONDS_PER_DAY, day_profile),
            (300.0, fractional_profile),
        ]
    )


def json_round_trip(data: dict) -> dict:
    """Force the dict through actual JSON text, as HTTP would."""
    return json.loads(json.dumps(data))


class TestProfileWire:
    def test_piecewise_round_trip_is_lossless(self, fractional_profile):
        rebuilt = profile_from_dict(
            json_round_trip(fractional_profile.to_dict())
        )
        assert isinstance(rebuilt, PiecewiseProfile)
        assert rebuilt.fingerprint == fractional_profile.fingerprint
        assert rebuilt.avf == fractional_profile.avf

    def test_irrational_floats_survive_json(self):
        # repr-based JSON floats are shortest-round-trip, so even
        # non-representable durations come back bit-for-bit.
        profile = PiecewiseProfile.from_segments(
            [(math.pi, 1 / 3), (math.e, 0.1), (math.sqrt(2), 0.0)]
        )
        rebuilt = profile_from_dict(json_round_trip(profile.to_dict()))
        assert rebuilt.fingerprint == profile.fingerprint

    def test_nested_round_trip_is_lossless(self, nested_profile):
        rebuilt = profile_from_dict(
            json_round_trip(nested_profile.to_dict())
        )
        assert isinstance(rebuilt, NestedProfile)
        assert rebuilt.fingerprint == nested_profile.fingerprint

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProfileError, match="unknown profile kind"):
            profile_from_dict({"kind": "spline", "knots": []})

    def test_rejects_non_dict(self):
        with pytest.raises(ProfileError, match="must be a dict"):
            profile_from_dict([1, 2, 3])

    def test_rejects_missing_piecewise_fields(self):
        with pytest.raises(ProfileError, match="missing"):
            profile_from_dict({"kind": "piecewise", "breakpoints": [1.0]})

    def test_rejects_nested_inside_nested(self, nested_profile):
        data = nested_profile.to_dict()
        data["segments"][0][1] = nested_profile.to_dict()
        with pytest.raises(ProfileError, match="piecewise inners"):
            profile_from_dict(data)


class TestComponentWire:
    def test_round_trip_preserves_fingerprint(self, day_profile):
        component = Component(
            "l2", 3.5 / SECONDS_PER_DAY, day_profile, multiplicity=16
        )
        rebuilt = Component.from_dict(
            json_round_trip(component.to_dict())
        )
        assert rebuilt.name == "l2"
        assert rebuilt.multiplicity == 16
        assert rebuilt.rate_per_second == component.rate_per_second
        assert (
            rebuilt.content_fingerprint == component.content_fingerprint
        )

    def test_multiplicity_defaults_to_one(self, day_profile):
        data = Component("c", 1e-5, day_profile).to_dict()
        del data["multiplicity"]
        assert Component.from_dict(data).multiplicity == 1

    def test_missing_fields_fail_loudly(self):
        with pytest.raises(ConfigurationError, match="missing"):
            Component.from_dict({"name": "c"})


class TestSystemModelWire:
    @pytest.fixture
    def system(self, day_profile, fractional_profile) -> SystemModel:
        return SystemModel(
            [
                Component(
                    "node", 2.0 / SECONDS_PER_DAY, day_profile,
                    multiplicity=64,
                ),
                Component("regfile", 1e-6, fractional_profile),
            ]
        )

    def test_round_trip_preserves_fingerprint(self, system):
        rebuilt = SystemModel.from_dict(json_round_trip(system.to_dict()))
        assert rebuilt.content_fingerprint == system.content_fingerprint
        assert [c.name for c in rebuilt.components] == [
            c.name for c in system.components
        ]

    def test_component_order_is_part_of_identity(self, system):
        data = system.to_dict()
        data["components"].reverse()
        rebuilt = SystemModel.from_dict(data)
        assert (
            rebuilt.content_fingerprint != system.content_fingerprint
        )

    def test_schema_tag_required(self, system):
        data = system.to_dict()
        data["schema"] = "repro.system/v0"
        with pytest.raises(ConfigurationError, match="repro.system/v1"):
            SystemModel.from_dict(data)

    def test_components_list_required(self):
        with pytest.raises(ConfigurationError, match="components"):
            SystemModel.from_dict({"schema": SYSTEM_SCHEMA})

    def test_wire_form_is_plain_json(self, system):
        # No numpy scalars or other non-JSON types may leak in.
        text = json.dumps(system.to_dict())
        assert SYSTEM_SCHEMA in text

    def test_estimates_agree_after_round_trip(self, day_profile):
        # The ultimate losslessness check: the rebuilt model produces
        # the identical closed-form estimate.
        from repro.methods import registry

        system = SystemModel(
            [
                Component(
                    "node", 2.0 / SECONDS_PER_DAY, day_profile,
                    multiplicity=64,
                ),
                Component(
                    "spare", 1e-6,
                    busy_idle_profile(
                        0.25 * SECONDS_PER_DAY, SECONDS_PER_DAY, 0.7
                    ),
                ),
            ]
        )
        rebuilt = SystemModel.from_dict(json_round_trip(system.to_dict()))
        direct = registry.estimate("first_principles", system)
        served = registry.estimate("first_principles", rebuilt)
        assert served.mttf_seconds == direct.mttf_seconds
