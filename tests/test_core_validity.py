"""Tests for the validity advisor."""

import pytest

from repro.core import (
    Component,
    Regime,
    SystemModel,
    component_validity,
    validity_report,
)
from repro.masking import busy_idle_profile
from repro.units import SECONDS_PER_DAY


def day_component(rate: float, multiplicity: int = 1) -> Component:
    return Component(
        "proc",
        rate,
        busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY),
        multiplicity=multiplicity,
    )


class TestComponentValidity:
    def test_terrestrial_spec_is_safe(self):
        # ~1e-6 errors/year over a 1-day loop: mass ~3e-12.
        comp = day_component(1e-6 / (365 * 86400))
        result = component_validity(comp)
        assert result.regime is Regime.SAFE
        assert abs(result.avf_step_error) < 1e-6

    def test_accelerated_test_flagged(self):
        # Several raw errors per day: mass > 1.
        comp = day_component(5.0 / SECONDS_PER_DAY)
        result = component_validity(comp)
        assert result.regime is Regime.UNRELIABLE
        assert abs(result.avf_step_error) > 0.05

    def test_intermediate_regime(self):
        comp = day_component(0.02 / SECONDS_PER_DAY)
        assert component_validity(comp).regime is Regime.CAUTION

    def test_error_can_be_skipped(self):
        comp = day_component(1e-9)
        result = component_validity(comp, compute_exact_error=False)
        assert result.avf_step_error is None


class TestValidityReport:
    def test_safe_system(self):
        system = SystemModel([day_component(1e-13, multiplicity=2)])
        report = validity_report(system)
        assert report.avf_regime is Regime.SAFE
        assert report.sofr_regime is Regime.SAFE
        assert report.overall_regime is Regime.SAFE
        assert any("validates" in n for n in report.notes)

    def test_cluster_flags_sofr(self):
        # Per-component mass tiny but C huge: SOFR at risk, AVF fine.
        system = SystemModel([day_component(2e-8, multiplicity=500_000)])
        report = validity_report(system)
        assert report.avf_regime is Regime.SAFE
        assert report.sofr_regime is not Regime.SAFE
        assert report.overall_regime is not Regime.SAFE

    def test_component_count_in_report(self):
        system = SystemModel([day_component(1e-12, multiplicity=42)])
        assert validity_report(system).component_count == 42

    def test_summary_mentions_components(self):
        system = SystemModel([day_component(1e-12)])
        text = validity_report(system).summary()
        assert "proc" in text
        assert "AVF step" in text
