"""Documentation consistency guards.

Keeps README/DESIGN/EXPERIMENTS honest: every experiment the docs cite
exists in the registry, every example the README lists is on disk, and
the recorded environment knobs are the ones the code reads.
"""

import re
from pathlib import Path

import pytest

from repro.harness import all_experiments

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme() -> str:
    return (ROOT / "README.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def design() -> str:
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def experiments_doc() -> str:
    return (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")


class TestReadme:
    def test_examples_listed_exist(self, readme):
        listed = re.findall(r"`([a-z_]+\.py)`", readme)
        example_files = {
            p.name for p in (ROOT / "examples").glob("*.py")
        }
        for name in listed:
            if name.endswith(".py") and not name.startswith(("bench_",)):
                assert name in example_files, f"README lists missing {name}"

    def test_all_examples_are_listed(self, readme):
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README"

    def test_env_knobs_documented(self, readme):
        assert "REPRO_MC_TRIALS" in readme
        assert "REPRO_SPEC_INSTRUCTIONS" in readme

    def test_cli_names_match_entry_points(self, readme):
        pyproject = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
        for tool in ("repro-experiments", "repro-simulate"):
            assert tool in readme
            assert tool in pyproject


class TestDesign:
    def test_identity_check_recorded(self, design):
        assert "matches the target paper" in design

    def test_every_paper_artifact_indexed(self, design):
        for artifact in (
            "table1", "table2", "fig3", "fig4", "fig5", "fig6a", "fig6b",
            "sec5.1", "sec5.2", "sec5.4",
        ):
            assert artifact in design, f"{artifact} missing from DESIGN.md"

    def test_substitutions_table_present(self, design):
        assert "Turandot" in design
        assert "SoftArch" in design
        assert "SPEC CPU2000" in design


class TestProgressEventVocabulary:
    """Every progress-event kind the engine can emit is documented."""

    @pytest.fixture(scope="class")
    def kinds(self) -> dict[str, str]:
        from repro.methods import progress

        found = {
            name: value
            for name, value in vars(progress).items()
            if name.isupper() and isinstance(value, str)
        }
        assert found, "progress module defines no event-kind constants"
        return found

    @pytest.fixture(scope="class")
    def scheduler_doc(self) -> str:
        return (ROOT / "docs" / "SCHEDULER.md").read_text(
            encoding="utf-8"
        )

    def test_every_kind_documented_in_design(self, kinds, design):
        for name, value in kinds.items():
            assert f"`{value}`" in design, (
                f"progress event {name} = {value!r} missing from "
                "DESIGN.md's vocabulary table"
            )

    def test_every_kind_documented_in_module_docstring(self, kinds):
        from repro.methods import progress

        docs = (progress.__doc__ or "") + (
            progress.ProgressEvent.__doc__ or ""
        )
        for name, value in kinds.items():
            assert f'"{value}"' in docs, (
                f"progress event {name} = {value!r} missing from the "
                "progress module/ProgressEvent docstrings"
            )

    def test_every_emitted_kind_is_in_the_vocabulary(self, kinds):
        # The engine emits events only through the vocabulary
        # constants; every constant must actually be wired into the
        # batch engine (a stale constant would document a kind nothing
        # emits).
        import repro.methods.batch as batch

        source = Path(batch.__file__).read_text(encoding="utf-8")
        for name in kinds:
            assert name in source, (
                f"vocabulary constant {name} is never used by the "
                "batch engine"
            )

    def test_scheduler_doc_exists_and_is_linked(
        self, scheduler_doc, readme, design
    ):
        assert "cross-shard budget ledger" in scheduler_doc.lower()
        assert "docs/SCHEDULER.md" in readme
        assert "docs/SCHEDULER.md" in design

    def test_ledger_record_kinds_documented(self, design):
        from repro.methods import ledger

        for record_kind in (
            ledger.SHARD_HELLO, ledger.POINT_OPEN,
            ledger.POINT_CONVERGED, ledger.BUDGET_FREED,
            ledger.BUDGET_CLAIMED, ledger.SHARD_BARRIER,
            ledger.SHARD_DONE,
        ):
            assert f"`{record_kind}`" in design, (
                f"ledger record kind {record_kind!r} missing from "
                "DESIGN.md"
            )

    def test_fleet_recipe_in_experiments_doc(self, experiments_doc):
        assert "--budget-ledger" in experiments_doc
        assert "--ledger-replay" in experiments_doc
        assert "sharded_fleet.py" in experiments_doc


class TestExperimentsDoc:
    def test_every_registered_paper_artifact_discussed(
        self, experiments_doc
    ):
        for artifact in all_experiments():
            if artifact.startswith("ablation."):
                continue
            # Section headings use long names; check the short id or its
            # expanded form appears.
            token = artifact.replace("sec", "Section ").replace(
                "fig", "Figure "
            )
            assert (
                artifact in experiments_doc or token in experiments_doc
            ), f"{artifact} missing from EXPERIMENTS.md"

    def test_methodology_notes_present(self, experiments_doc):
        assert "Methodology notes" in experiments_doc
        assert "dilation" in experiments_doc
        assert "phase" in experiments_doc
