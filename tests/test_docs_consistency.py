"""Documentation consistency guards.

Keeps README/DESIGN/EXPERIMENTS honest: every experiment the docs cite
exists in the registry, every example the README lists is on disk, and
the recorded environment knobs are the ones the code reads.
"""

import re
from pathlib import Path

import pytest

from repro.harness import all_experiments

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme() -> str:
    return (ROOT / "README.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def design() -> str:
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def experiments_doc() -> str:
    return (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")


class TestReadme:
    def test_examples_listed_exist(self, readme):
        listed = re.findall(r"`([a-z_]+\.py)`", readme)
        example_files = {
            p.name for p in (ROOT / "examples").glob("*.py")
        }
        for name in listed:
            if name.endswith(".py") and not name.startswith(("bench_",)):
                assert name in example_files, f"README lists missing {name}"

    def test_all_examples_are_listed(self, readme):
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README"

    def test_env_knobs_documented(self, readme):
        assert "REPRO_MC_TRIALS" in readme
        assert "REPRO_SPEC_INSTRUCTIONS" in readme

    def test_cli_names_match_entry_points(self, readme):
        pyproject = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
        for tool in (
            "repro-experiments", "repro-lint", "repro-serve",
            "repro-simulate", "repro-worker",
        ):
            assert tool in readme
            assert tool in pyproject

    def test_cache_dir_env_documented(self, readme):
        from repro.methods.cache import CACHE_DIR_ENV

        assert CACHE_DIR_ENV in readme


class TestDesign:
    def test_identity_check_recorded(self, design):
        assert "matches the target paper" in design

    def test_every_paper_artifact_indexed(self, design):
        for artifact in (
            "table1", "table2", "fig3", "fig4", "fig5", "fig6a", "fig6b",
            "sec5.1", "sec5.2", "sec5.4",
        ):
            assert artifact in design, f"{artifact} missing from DESIGN.md"

    def test_substitutions_table_present(self, design):
        assert "Turandot" in design
        assert "SoftArch" in design
        assert "SPEC CPU2000" in design


class TestProgressEventVocabulary:
    """Every progress-event kind the engine can emit is documented.

    The vocabulary cross-checks themselves (progress kinds and ledger
    record kinds against DESIGN.md and the module docstrings, stale
    constants against the batch engine) migrated onto ``repro-lint``'s
    R1 rule family — one source of truth, shared by this suite, the
    CLI, and the ``lint-gate`` CI job.
    """

    @pytest.fixture(scope="class")
    def scheduler_doc(self) -> str:
        return (ROOT / "docs" / "SCHEDULER.md").read_text(
            encoding="utf-8"
        )

    def test_registry_docs_rules_clean(self):
        # R101-R106: methods/executors/progress kinds/ledger kinds/
        # schema tags documented, no stale progress constants.
        from repro.lint import run_lint

        report = run_lint([ROOT / "src"], rules=["R1"], root=ROOT)
        assert report.clean, "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}"
            for f in report.findings
        )

    def test_lint_cli_entry_agrees(self, capsys):
        # The same check through the CLI surface the gate job runs.
        from repro.lint.cli import main

        code = main(
            [str(ROOT / "src"), "--rules", "R1", "--root", str(ROOT)]
        )
        assert code == 0, capsys.readouterr().out

    def test_scheduler_doc_exists_and_is_linked(
        self, scheduler_doc, readme, design
    ):
        assert "cross-shard budget ledger" in scheduler_doc.lower()
        assert "docs/SCHEDULER.md" in readme
        assert "docs/SCHEDULER.md" in design

    def test_fleet_recipe_in_experiments_doc(self, experiments_doc):
        assert "--budget-ledger" in experiments_doc
        assert "--ledger-replay" in experiments_doc
        assert "sharded_fleet.py" in experiments_doc


class TestProgressEventWire:
    """The SSE wire schema stays in lockstep with the documented event.

    ``ProgressEvent.to_dict()`` is the analysis service's SSE payload;
    these guards pin its key set to the dataclass field set and to the
    documented attribute vocabulary, so adding (or renaming) an event
    field without updating the wire form, its inverse, and the docs is
    a test failure rather than silent schema drift.
    """

    @pytest.fixture(scope="class")
    def field_names(self) -> set[str]:
        import dataclasses

        from repro.methods.progress import ProgressEvent

        return {f.name for f in dataclasses.fields(ProgressEvent)}

    @pytest.fixture(scope="class")
    def full_event(self):
        # Every field set away from its default, so to_dict() must
        # emit the complete key set.
        from repro.methods.progress import ProgressEvent

        return ProgressEvent(
            label="C=8",
            kind="chunk",
            merged_chunks=3,
            total_chunks=8,
            trials=12_000,
            rel_stderr=0.031,
            stopped_early=True,
            cached=True,
            method="sofr_only",
            granted_trials=4_000,
            granted_chunks=2,
            warmed_entries=17,
            shard=2,
            round=1,
        )

    def test_wire_keys_equal_dataclass_fields(
        self, field_names, full_event
    ):
        assert set(full_event.to_dict()) == field_names, (
            "ProgressEvent.to_dict() key set drifted from the "
            "dataclass field set — update to_dict/from_dict and the "
            "documented vocabulary together"
        )

    def test_round_trip_is_lossless(self, full_event):
        from repro.methods.progress import ProgressEvent

        assert ProgressEvent.from_dict(full_event.to_dict()) == full_event
        # Compact defaults-elided form round-trips too.
        sparse = ProgressEvent("run", "prewarm", warmed_entries=5)
        assert set(sparse.to_dict()) == {"label", "kind", "warmed_entries"}
        assert ProgressEvent.from_dict(sparse.to_dict()) == sparse

    def test_unknown_wire_fields_rejected(self, full_event):
        from repro.methods.progress import ProgressEvent

        data = full_event.to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ProgressEvent.from_dict(data)

    def test_every_field_documented(self, field_names):
        from repro.methods.progress import ProgressEvent

        doc = ProgressEvent.__doc__ or ""
        for name in field_names:
            assert name in doc, (
                f"ProgressEvent field {name!r} missing from the class "
                "docstring's attribute vocabulary"
            )


class TestServiceDoc:
    """docs/SERVICE.md matches the service the code actually serves."""

    @pytest.fixture(scope="class")
    def service_doc(self) -> str:
        return (ROOT / "docs" / "SERVICE.md").read_text(encoding="utf-8")

    def test_linked_from_readme_and_design(self, readme, design):
        assert "docs/SERVICE.md" in readme
        assert "docs/SERVICE.md" in design

    def test_every_endpoint_documented(self, service_doc):
        for route in (
            "POST /v1/jobs",
            "GET /v1/jobs/",
            "/events",
            "GET /v1/fleet",
            "GET /v1/health",
        ):
            assert route in service_doc, f"{route} missing from SERVICE.md"

    def test_wire_schemas_documented(self, service_doc):
        from repro.core.system import SYSTEM_SCHEMA
        from repro.service import JOB_SCHEMA

        assert JOB_SCHEMA in service_doc
        assert SYSTEM_SCHEMA in service_doc
        assert "repro.resultset/v1" in service_doc

    def test_sse_vocabulary_documented(self, service_doc):
        from repro.methods import progress

        kinds = {
            value
            for name, value in vars(progress).items()
            if name.isupper() and isinstance(value, str)
        }
        for kind in kinds:
            assert f"`{kind}`" in service_doc, (
                f"SSE event kind {kind!r} missing from SERVICE.md"
            )

    def test_semantics_sections_present(self, service_doc):
        for needle in (
            "dedup", "quota", "bit-identical", "tenant",
            "repro-serve", "--cache-dir", "429",
        ):
            assert needle in service_doc, (
                f"SERVICE.md must discuss {needle!r}"
            )

    def test_service_recipe_in_experiments_doc(self, experiments_doc):
        assert "repro-serve" in experiments_doc
        assert "analysis_server.py" in experiments_doc


class TestExperimentsDoc:
    def test_every_registered_paper_artifact_discussed(
        self, experiments_doc
    ):
        for artifact in all_experiments():
            if artifact.startswith("ablation."):
                continue
            # Section headings use long names; check the short id or its
            # expanded form appears.
            token = artifact.replace("sec", "Section ").replace(
                "fig", "Figure "
            )
            assert (
                artifact in experiments_doc or token in experiments_doc
            ), f"{artifact} missing from EXPERIMENTS.md"

    def test_methodology_notes_present(self, experiments_doc):
        assert "Methodology notes" in experiments_doc
        assert "dilation" in experiments_doc
        assert "phase" in experiments_doc
