"""Property tests for the elastic-membership state machine (PR-10).

The membership layer's central determinism claim
(``docs/SCHEDULER.md``): every derived membership fact — the member
snapshot, per-slot generations, vacancy, heartbeat high-water marks,
the epoch count — is a pure function of the *per-slot* record order,
so any interleaving of the slots' appends that a real racing fleet
could produce yields the same answers for every reader. These tests
drive :meth:`LedgerState.scan` with Hypothesis-drawn interleavings and
fault shapes instead of real fleets:

* arbitrary per-slot-order-preserving interleavings of join / depart /
  heartbeat / claim records produce identical membership snapshots and
  point-ownership maps;
* a torn membership tail (writer killed mid-append) is ignored exactly
  like a torn claim record — the scan equals the scan of the untorn
  prefix;
* duplicated membership records are first-occurrence-wins no-ops, just
  like duplicated round records;
* round allocation is membership-blind: splicing membership records
  anywhere into a *real* completed ledger changes no round's grants.
"""

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import chaos
from repro.methods import LedgerState
from repro.methods.cache import append_record

# -- synthetic record builders --------------------------------------------


def join_record(slot, generation, round_number):
    return {
        "kind": "shard-join",
        "shard": slot,
        "generation": generation,
        "round": round_number,
    }


def depart_record(slot, generation, round_number, by, adopter, reason):
    return {
        "kind": "shard-depart",
        "shard": slot,
        "by": by,
        "round": round_number,
        "generation": generation,
        "adopter": adopter,
        "reason": reason,
    }


def heartbeat_record(slot, beat):
    return {"kind": "shard-heartbeat", "shard": slot, "beat": beat}


def claim_record(slot, round_number, index, trials):
    return {
        "kind": "budget-claimed",
        "shard": slot,
        "round": round_number,
        "index": index,
        "trials": trials,
    }


@st.composite
def fleet_scripts(draw):
    """Per-slot legal membership scripts plus loose heartbeats/claims.

    Each slot's membership trace alternates depart(gen g) /
    join(gen g+1) — exactly the sequence a real slot's lease expiries
    and ``--join`` replacements produce. Heartbeats and claims are
    free-floating: take-max and unique keys make them order-blind.
    """
    count = draw(st.integers(min_value=2, max_value=4))
    queues = []
    for slot in range(count):
        events = []
        generation = 0
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if not events or events[-1]["kind"] == "shard-join":
                events.append(
                    depart_record(
                        slot,
                        generation,
                        draw(st.integers(min_value=0, max_value=5)),
                        draw(st.integers(min_value=0, max_value=count - 1)),
                        draw(
                            st.one_of(
                                st.none(),
                                st.integers(min_value=0, max_value=count - 1),
                            )
                        ),
                        draw(st.sampled_from(["leave", "lease-expired"])),
                    )
                )
            else:
                generation += 1
                events.append(
                    join_record(
                        slot,
                        generation,
                        draw(st.integers(min_value=0, max_value=5)),
                    )
                )
        if events:
            queues.append(events)
    for slot_beats in draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=count - 1),
                st.integers(min_value=0, max_value=40),
            ),
            max_size=5,
        )
    ):
        queues.append([heartbeat_record(*slot_beats)])
    claim_keys = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=count - 1),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=6),
            ),
            unique=True,
            max_size=5,
        )
    )
    for slot, round_number, index in claim_keys:
        queues.append(
            [
                claim_record(
                    slot,
                    round_number,
                    index,
                    draw(st.integers(min_value=1, max_value=4000)),
                )
            ]
        )
    return count, queues


def draw_interleaving(draw, queues):
    """One per-queue-order-preserving merge of ``queues``."""
    tags = [
        number for number, queue in enumerate(queues) for _ in queue
    ]
    order = draw(st.permutations(tags))
    cursors = [0] * len(queues)
    merged = []
    for tag in order:
        merged.append(queues[tag][cursors[tag]])
        cursors[tag] += 1
    return merged


@st.composite
def two_interleavings(draw):
    count, queues = draw(fleet_scripts())
    return (
        count,
        draw_interleaving(draw, queues),
        draw_interleaving(draw, queues),
    )


def write_ledger(path, records):
    for record in records:
        append_record(path, record)


def membership_snapshot(state, count):
    """Every membership-derived fact a reader can act on."""
    history = state.epoch_history()
    return {
        "members": state.members(),
        "generation": [state.generation(s) for s in range(count)],
        "departed": [state.departed(s) for s in range(count)],
        "depart_events": [state.depart_event(s) for s in range(count)],
        "heartbeats": state.heartbeats,
        "epoch": state.epoch(),
        # Absolute epoch numbers are file-order (two interleavings
        # legitimately number the same events differently); the
        # per-slot *event sequence* is the invariant.
        "per_slot_history": {
            slot: [
                (kind, generation)
                for _epoch, kind, event_slot, generation in history
                if event_slot == slot
            ]
            for slot in range(count)
        },
        "claims": state.claims,
        "record_counts": state.record_counts,
    }


class TestInterleavingInvariance:
    @settings(max_examples=60, deadline=None)
    @given(case=two_interleavings())
    def test_any_interleaving_same_membership_and_ownership(
        self, case, tmp_path_factory
    ):
        count, first, second = case
        base = tmp_path_factory.mktemp("interleave")
        path_a, path_b = base / "a.ledger", base / "b.ledger"
        write_ledger(path_a, first)
        write_ledger(path_b, second)
        state_a = LedgerState.scan(path_a, count)
        state_b = LedgerState.scan(path_b, count)
        assert membership_snapshot(state_a, count) == (
            membership_snapshot(state_b, count)
        )
        # The point-ownership map: global point k belongs to slot
        # k % count; owners must agree for every point.
        members_a, members_b = state_a.members(), state_b.members()
        for point in range(3 * count):
            assert members_a.get(point % count) == (
                members_b.get(point % count)
            )

    @settings(max_examples=40, deadline=None)
    @given(case=two_interleavings())
    def test_epoch_count_is_interleaving_blind(
        self, case, tmp_path_factory
    ):
        count, first, second = case
        base = tmp_path_factory.mktemp("epochs")
        path_a, path_b = base / "a.ledger", base / "b.ledger"
        write_ledger(path_a, first)
        write_ledger(path_b, second)
        a = LedgerState.scan(path_a, count)
        b = LedgerState.scan(path_b, count)
        assert a.epoch() == b.epoch() == len(a.epoch_history())


class TestTornTails:
    @settings(max_examples=40, deadline=None)
    @given(
        script=fleet_scripts(),
        torn_kind=st.sampled_from(["join", "depart", "heartbeat", "claim"]),
        cut=st.integers(min_value=1, max_value=30),
        rng=st.randoms(use_true_random=False),
    )
    def test_torn_membership_tail_ignored_like_torn_claim(
        self, script, torn_kind, cut, rng, tmp_path_factory
    ):
        count, queues = script
        records = [record for queue in queues for record in queue]
        rng.shuffle(records)
        base = tmp_path_factory.mktemp("torn")
        whole, torn = base / "whole.ledger", base / "torn.ledger"
        write_ledger(whole, records)
        write_ledger(torn, records)
        victim = {
            "join": join_record(0, 9, 9),
            "depart": depart_record(0, 9, 9, 0, None, "leave"),
            "heartbeat": heartbeat_record(0, 99),
            "claim": claim_record(0, 9, 9, 123),
        }[torn_kind]
        line = json.dumps(victim, sort_keys=True, separators=(",", ":"))
        # A proper prefix of a compact JSON object is never valid JSON,
        # so any cut point models a writer killed mid-append.
        partial = line[: max(1, len(line) - cut)]
        with open(torn, "a", encoding="utf-8") as handle:
            handle.write("\n" + partial)
        state_whole = LedgerState.scan(whole, count)
        state_torn = LedgerState.scan(torn, count)
        assert membership_snapshot(state_torn, count) == (
            membership_snapshot(state_whole, count)
        )
        assert state_torn.duplicates == state_whole.duplicates


class TestDuplicateRecords:
    @settings(max_examples=40, deadline=None)
    @given(
        script=fleet_scripts(), rng=st.randoms(use_true_random=False)
    )
    def test_membership_duplicates_are_first_wins_noops(
        self, script, rng, tmp_path_factory
    ):
        count, queues = script
        records = [record for queue in queues for record in queue]
        rng.shuffle(records)
        path = tmp_path_factory.mktemp("dups") / "dups.ledger"
        write_ledger(path, records)
        before = LedgerState.scan(path, count)
        reference = membership_snapshot(before, count)
        replayed = [
            record
            for record in records
            if record["kind"] in ("shard-join", "shard-depart")
        ]
        for record in replayed:
            # Same dedup key, mutated payload: first occurrence must
            # win, exactly as for duplicated round records.
            mutated = dict(record, round=7 + record["round"])
            if mutated["kind"] == "shard-depart":
                mutated["reason"] = "mutated"
                mutated["adopter"] = 99
            append_record(path, mutated)
        after = LedgerState.scan(path, count)
        snapshot = membership_snapshot(after, count)
        # record_counts legitimately grows (appends happened); every
        # *derived* membership fact must not.
        reference.pop("record_counts")
        snapshot.pop("record_counts")
        assert snapshot == reference
        assert after.duplicates == before.duplicates + len(replayed)


# -- membership-blindness of allocation (real ledger) ----------------------


@pytest.fixture(scope="module")
def real_ledger(tmp_path_factory):
    """A completed real ledger plus its baseline per-round grants."""
    path = tmp_path_factory.mktemp("real") / "real.ledger"
    chaos.run_member_inline(path, 0, 1)
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.split("\n") if line.strip()]
    state = LedgerState.scan(path, 1)
    rounds = sorted({number for _slot, number in state.rounds})
    unit = chaos.TRIALS // chaos.CHUNKS
    baseline = {
        number: safe_allocation(state, number, unit)
        for number in rounds
    }
    assert any(
        grants for grants in baseline.values()
        if isinstance(grants, dict)
    ), "chaos sweep produced no cross-round grants; fixture is vacuous"
    return lines, rounds, unit, baseline


def safe_allocation(state, number, unit):
    try:
        return state.allocation(number, unit)
    except Exception as error:  # protocol-ended is part of the contract
        return ("raised", type(error).__name__)


@st.composite
def membership_noise(draw):
    kind = draw(st.sampled_from(["join", "depart", "heartbeat"]))
    slot = draw(st.integers(min_value=0, max_value=3))
    if kind == "join":
        return join_record(slot, draw(st.integers(1, 5)), 0)
    if kind == "depart":
        return depart_record(
            slot, draw(st.integers(0, 5)), 0, 0, None, "lease-expired"
        )
    return heartbeat_record(slot, draw(st.integers(0, 50)))


class TestAllocationMembershipBlind:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_spliced_membership_records_change_no_grants(
        self, data, real_ledger, tmp_path_factory
    ):
        lines, rounds, unit, baseline = real_ledger
        spliced = list(lines)
        insertions = data.draw(
            st.lists(membership_noise(), min_size=1, max_size=6)
        )
        for record in insertions:
            position = data.draw(
                st.integers(min_value=0, max_value=len(spliced))
            )
            spliced.insert(
                position,
                json.dumps(record, sort_keys=True, separators=(",", ":")),
            )
        path = tmp_path_factory.mktemp("blind") / "spliced.ledger"
        path.write_text("\n".join(spliced) + "\n", encoding="utf-8")
        state = LedgerState.scan(path, 1)
        # The noise really landed (heartbeat-only draws advance no
        # epoch; they leave beat marks instead)...
        assert state.epoch() > 0 or state.heartbeats
        for number in rounds:  # ...and no round's grants moved.
            assert safe_allocation(state, number, unit) == (
                baseline[number]
            )
