"""Tests for the Section-3 analytical models (repro.analytical)."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.analytical.busy_idle import (
    avf_step_mttf_busy_idle,
    busy_idle_mttf_closed_form,
    busy_idle_mttf_paper_form,
    figure3_curves,
    relative_error_busy_idle,
)
from repro.analytical.geometric_sum import (
    exponential_limit_pdf,
    geometric_erlang_mixture_pdf,
)
from repro.analytical.sofr_halfnormal import (
    figure4_curve,
    halfnormal_component_mttf,
    halfnormal_relative_error,
    halfnormal_system_mttf_exact,
    halfnormal_system_mttf_sofr,
)
from repro.analytical.theorem1 import (
    mod_cdf,
    mod_density,
    mod_distribution_distance_from_uniform,
    uniform_limit_error_bound,
)
from repro.core import exact_component_mttf
from repro.errors import ConfigurationError
from repro.masking import busy_idle_profile


class TestTheorem1:
    def test_density_integrates_to_one(self):
        lam, loop = 0.3, 5.0
        value, _ = integrate.quad(
            lambda x: float(mod_density(x, lam, loop)), 0, loop
        )
        assert value == pytest.approx(1.0, rel=1e-9)

    def test_uniform_limit(self):
        # Theorem 1: as λL → 0 the density tends to 1/L everywhere.
        lam, loop = 1e-9, 4.0
        x = np.linspace(0, loop, 9)
        np.testing.assert_allclose(
            mod_density(x, lam, loop), 1.0 / loop, rtol=1e-6
        )

    def test_density_decreasing(self):
        lam, loop = 1.0, 3.0
        x = np.linspace(0, loop, 11)
        d = mod_density(x, lam, loop)
        assert np.all(np.diff(d) < 0)

    def test_cdf_endpoints(self):
        lam, loop = 0.5, 2.0
        assert float(mod_cdf(0.0, lam, loop)) == 0.0
        assert float(mod_cdf(loop, lam, loop)) == pytest.approx(1.0)

    def test_tv_distance_shrinks_with_lambda(self):
        loop = 10.0
        distances = [
            mod_distribution_distance_from_uniform(lam, loop)
            for lam in (1.0, 0.1, 0.01, 1e-4)
        ]
        assert all(a > b for a, b in zip(distances, distances[1:]))
        assert distances[-1] < 1e-3

    def test_tv_distance_matches_numerical(self):
        lam, loop = 0.7, 3.0
        value, _ = integrate.quad(
            lambda x: abs(float(mod_density(x, lam, loop)) - 1 / loop),
            0,
            loop,
        )
        assert mod_distribution_distance_from_uniform(
            lam, loop
        ) == pytest.approx(0.5 * value, rel=1e-6)

    def test_bound_dominates(self):
        lam, loop = 0.05, 4.0
        assert mod_distribution_distance_from_uniform(lam, loop) <= (
            uniform_limit_error_bound(lam, loop)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mod_density(0.5, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            mod_density(2.0, 1.0, 1.0)


class TestBusyIdle:
    @pytest.mark.parametrize(
        "lam,busy,period",
        [(0.1, 3.0, 10.0), (2.5, 0.5, 1.0), (1e-7, 43200.0, 86400.0)],
    )
    def test_paper_form_equals_simplified(self, lam, busy, period):
        assert busy_idle_mttf_paper_form(
            lam, busy, period
        ) == pytest.approx(
            busy_idle_mttf_closed_form(lam, busy, period), rel=1e-10
        )

    def test_matches_renewal_machinery(self):
        lam, busy, period = 0.8, 2.0, 7.0
        profile = busy_idle_profile(busy, period)
        assert busy_idle_mttf_closed_form(
            lam, busy, period
        ) == pytest.approx(exact_component_mttf(lam, profile), rel=1e-12)

    def test_avf_step_value(self):
        assert avf_step_mttf_busy_idle(0.5, 2.0, 8.0) == pytest.approx(
            (8.0 / 2.0) / 0.5
        )

    def test_relative_error_vanishes_at_small_mass(self):
        assert relative_error_busy_idle(1e-9, 5.0, 10.0) < 1e-6

    def test_relative_error_grows_with_rate(self):
        errors = [
            relative_error_busy_idle(lam, 5.0, 10.0)
            for lam in (0.01, 0.1, 0.5)
        ]
        assert errors[0] < errors[1] < errors[2]

    def test_figure3_structure(self):
        points = figure3_curves()
        assert len(points) == 16 * 3  # 16 loop lengths x 3 scales
        # Error grows with the rate scale at fixed L.
        at_16_days = {
            p.rate_scale: p.relative_error
            for p in points
            if p.loop_days == 16
        }
        assert at_16_days[1.0] < at_16_days[3.0] < at_16_days[5.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            busy_idle_mttf_closed_form(1.0, 0.0, 5.0)
        with pytest.raises(ConfigurationError):
            busy_idle_mttf_closed_form(1.0, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            busy_idle_mttf_closed_form(0.0, 1.0, 5.0)


class TestHalfNormalSofr:
    def test_component_mttf(self):
        assert halfnormal_component_mttf() == pytest.approx(
            1.0 / math.sqrt(math.pi)
        )

    def test_single_component_exact_equals_mttf(self):
        assert halfnormal_system_mttf_exact(1) == pytest.approx(
            halfnormal_component_mttf(), rel=1e-8
        )

    def test_sofr_underestimates(self):
        for n in (2, 8, 32):
            assert halfnormal_system_mttf_sofr(n) < (
                halfnormal_system_mttf_exact(n)
            )

    def test_paper_endpoints(self):
        # "error grows from 15% ... to about 32% for 32 components".
        assert halfnormal_relative_error(2) == pytest.approx(0.146, abs=0.005)
        assert halfnormal_relative_error(32) == pytest.approx(0.344, abs=0.01)

    def test_error_monotone(self):
        errors = [p.relative_error for p in figure4_curve()]
        assert all(a < b for a, b in zip(errors, errors[1:]))

    def test_exact_matches_sampling(self, rng):
        from repro.reliability import HalfNormalSquare

        n = 4
        samples = (
            HalfNormalSquare().sample(200_000 * n, rng).reshape(-1, n).min(axis=1)
        )
        assert samples.mean() == pytest.approx(
            halfnormal_system_mttf_exact(n), rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            halfnormal_system_mttf_exact(0)
        with pytest.raises(ConfigurationError):
            halfnormal_system_mttf_sofr(0)


class TestGeometricErlang:
    def test_mixture_collapses_to_exponential(self):
        # Section 3.2.1: the geometric mixture of Erlangs IS the
        # exponential with rate λ·AVF.
        lam, avf = 2.0, 0.3
        x = np.linspace(0.01, 3.0, 25)
        mixture = geometric_erlang_mixture_pdf(x, lam, avf, terms=400)
        limit = exponential_limit_pdf(x, lam, avf)
        np.testing.assert_allclose(mixture, limit, rtol=1e-8)

    def test_avf_one_is_plain_exponential(self):
        lam = 1.5
        x = np.linspace(0.0, 2.0, 9)
        np.testing.assert_allclose(
            geometric_erlang_mixture_pdf(x, lam, 1.0),
            lam * np.exp(-lam * x),
            rtol=1e-12,
        )

    def test_truncation_converges(self):
        lam, avf, x = 1.0, 0.2, 2.0
        few = float(geometric_erlang_mixture_pdf(x, lam, avf, terms=3))
        many = float(geometric_erlang_mixture_pdf(x, lam, avf, terms=300))
        limit = float(exponential_limit_pdf(x, lam, avf))
        assert abs(many - limit) < abs(few - limit)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_erlang_mixture_pdf(1.0, -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            geometric_erlang_mixture_pdf(1.0, 1.0, 1.5)
        with pytest.raises(ConfigurationError):
            geometric_erlang_mixture_pdf(-1.0, 1.0, 0.5)
