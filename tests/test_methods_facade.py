"""Tests for the analyze() facade, batch engine, and ResultSet JSON."""

import math

import pytest

from repro import analyze, evaluate_design_space
from repro.core import Component, MonteCarloConfig, SystemModel
from repro.errors import ConfigurationError
from repro.methods import ComponentCache, ResultSet
from repro.reliability.metrics import MTTFEstimate
from repro.core.comparison import MethodComparison
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def system(day_profile):
    # Hazard mass per day is 5e-4: deep inside the AVF-safe regime.
    return SystemModel(
        [Component("node", 1e-3 / SECONDS_PER_DAY, day_profile)]
    )


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8, 100)
    ]


class TestAnalyzeFacade:
    def test_fluent_run(self, system):
        result = (
            analyze(system, label="uni")
            .using("avf_sofr", "hybrid")
            .against("exact")
            .run()
        )
        assert isinstance(result, ResultSet)
        assert len(result) == 1
        assert result[0].system_label == "uni"
        assert result.methods == ("avf_sofr", "hybrid")
        assert result.reference_method == "first_principles"
        assert result[0].abs_error("avf_sofr") < 1e-3

    def test_empty_method_list_rejected(self, system):
        with pytest.raises(ConfigurationError, match="at least one"):
            analyze(system).using()

    def test_run_without_using_rejected(self, system):
        with pytest.raises(ConfigurationError, match="no methods"):
            analyze(system).run()

    def test_unknown_method_rejected_with_hint(self, system):
        with pytest.raises(ConfigurationError, match="available"):
            analyze(system).using("quantum_oracle")

    def test_unknown_reference_rejected(self, system):
        with pytest.raises(ConfigurationError, match="reference"):
            analyze(system).against("vibes")

    def test_monte_carlo_reference_seeded(self, system):
        mc = MonteCarloConfig(trials=3_000, seed=5)
        a = analyze(system).using("avf_sofr").with_mc(mc).run()
        b = analyze(system).using("avf_sofr").with_mc(mc).run()
        assert a[0].reference.mttf_seconds == b[0].reference.mttf_seconds

    def test_non_system_rejected(self):
        with pytest.raises(ConfigurationError, match="SystemModel"):
            analyze("not a system")

    def test_unsupported_method_rejected(self, day_profile):
        cluster = SystemModel(
            [Component("n", 1e-6, day_profile, multiplicity=4)]
        )
        with pytest.raises(ConfigurationError, match="support"):
            analyze(cluster).using("avf").against("exact").run()

    def test_reference_reused_when_also_selected(self, system):
        result = (
            analyze(system)
            .using("first_principles", "avf_sofr")
            .against("exact")
            .run()
        )
        assert result[0].estimates["first_principles"] is (
            result[0].reference
        )


class TestBatchEngine:
    def test_orders_and_labels_preserved(self, cluster_space):
        result = evaluate_design_space(
            cluster_space,
            methods=["sofr_only", "first_principles"],
            mc_config=MonteCarloConfig(trials=2_000, seed=3),
        )
        assert result.labels == ["C=2", "C=8", "C=100"]
        assert result.methods == ("sofr_only", "first_principles")

    def test_component_cache_reused_across_grid_points(self, cluster_space):
        cache = ComponentCache()
        evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=MonteCarloConfig(trials=2_000, seed=3),
            cache=cache,
        )
        # One distinct (profile, rate) component across all three C
        # values: one miss, the rest hits.
        assert cache.misses == 1
        assert cache.hits == 2

    def test_workers_match_serial(self, cluster_space):
        mc = MonteCarloConfig(trials=2_000, seed=3)
        serial = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc
        )
        threaded = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc, workers=4
        )
        assert serial == threaded

    def test_cache_true_means_fresh_cache(self, cluster_space):
        result = evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=MonteCarloConfig(trials=1_000, seed=3),
            cache=True,
        )
        assert len(result) == 3

    def test_merged_mixed_references_flagged(self, system):
        a = analyze(system).using("avf_sofr").against("exact").run()
        b = analyze(system).using("avf_sofr").against("monte_carlo").run()
        assert a.merged(a).reference_method == "first_principles"
        assert a.merged(b).reference_method == "mixed"

    def test_empty_methods_rejected(self, cluster_space):
        with pytest.raises(ConfigurationError, match="empty"):
            evaluate_design_space(cluster_space, methods=[])

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            evaluate_design_space([], methods=["avf_sofr"])

    def test_unsupported_method_raises_unless_skipped(self, cluster_space):
        with pytest.raises(ConfigurationError, match="support"):
            evaluate_design_space(
                cluster_space[2:],
                methods=["avf"],
                mc_config=MonteCarloConfig(trials=500, seed=1),
            )
        result = evaluate_design_space(
            cluster_space[2:],
            methods=["avf", "first_principles"],
            mc_config=MonteCarloConfig(trials=500, seed=1),
            skip_unsupported=True,
        )
        assert result[0].method_names == ["first_principles"]


class TestResultSetJson:
    def test_round_trip_lossless(self, system):
        result = (
            analyze(system, label="uni")
            .using("avf_sofr", "sofr_only", "first_principles")
            .against("monte_carlo")
            .with_mc(MonteCarloConfig(trials=2_000, seed=9))
            .run()
        )
        loaded = ResultSet.from_json(result.to_json())
        assert loaded == result
        assert loaded[0].error("avf_sofr") == result[0].error("avf_sofr")

    def test_round_trip_through_file(self, system, tmp_path):
        result = analyze(system).using("first_principles").run()
        path = tmp_path / "result.json"
        result.to_json(path)
        assert ResultSet.from_json(path) == result
        assert ResultSet.from_json(str(path)) == result

    def test_infinite_mttf_round_trips(self):
        comparison = MethodComparison(
            system_label="never-fails",
            reference=MTTFEstimate(mttf_seconds=1.0),
            estimates={
                "avf": MTTFEstimate(mttf_seconds=math.inf, method="avf")
            },
        )
        rs = ResultSet((comparison,), methods=("avf",))
        loaded = ResultSet.from_json(rs.to_json())
        assert math.isinf(loaded[0].estimates["avf"].mttf_seconds)

    def test_rejects_foreign_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            ResultSet.from_json('{"schema": "something/else"}')

    def test_worst_abs_error_requires_method_presence(self, system):
        result = analyze(system).using("first_principles").run()
        with pytest.raises(ConfigurationError):
            result.worst_abs_error("softarch")
