"""Tests for unit conversions (repro.units)."""

import math

import pytest

from repro import units
from repro.errors import ConfigurationError


class TestFitConversions:
    def test_one_fit_is_one_failure_per_billion_hours(self):
        rate = units.fit_to_rate_per_second(1.0)
        assert rate * 1e9 * 3600.0 == pytest.approx(1.0)

    def test_fit_round_trip(self):
        assert units.rate_per_second_to_fit(
            units.fit_to_rate_per_second(123.4)
        ) == pytest.approx(123.4)

    def test_paper_baseline_equivalence(self):
        # The paper equates 0.001 FIT/bit with ~1e-8 errors/year/bit.
        per_year = units.fit_to_per_year(0.001)
        assert per_year == pytest.approx(8.76e-9, rel=1e-6)
        # The paper's rounded constant is within 15% of the exact value.
        assert per_year == pytest.approx(
            units.BASELINE_RATE_PER_BIT_YEAR, rel=0.15
        )

    def test_negative_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            units.fit_to_rate_per_second(-1.0)


class TestYearConversions:
    def test_per_year_round_trip(self):
        assert units.per_second_to_per_year(
            units.per_year_to_per_second(42.0)
        ) == pytest.approx(42.0)

    def test_year_is_8760_hours(self):
        assert units.SECONDS_PER_YEAR == pytest.approx(8760 * 3600)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            units.per_year_to_per_second(-0.1)
        with pytest.raises(ConfigurationError):
            units.per_second_to_per_year(-0.1)


class TestMttfToFit:
    def test_thousand_hour_mttf(self):
        mttf_seconds = 1000 * 3600.0
        assert units.mttf_seconds_to_fit(mttf_seconds) == pytest.approx(1e6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            units.mttf_seconds_to_fit(0.0)


class TestCycles:
    def test_cycles_to_seconds_at_base_clock(self):
        assert units.cycles_to_seconds(2.0e9) == pytest.approx(1.0)

    def test_round_trip(self):
        assert units.seconds_to_cycles(
            units.cycles_to_seconds(12345.0, 1e9), 1e9
        ) == pytest.approx(12345.0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ConfigurationError):
            units.cycles_to_seconds(1.0, 0.0)


class TestCalendarHelpers:
    def test_days(self):
        assert units.days(2) == pytest.approx(172800.0)

    def test_hours(self):
        assert units.hours(1.5) == pytest.approx(5400.0)

    def test_years(self):
        assert units.years(1) == pytest.approx(units.SECONDS_PER_YEAR)

    def test_week_constant(self):
        assert units.SECONDS_PER_WEEK == pytest.approx(7 * units.days(1))
