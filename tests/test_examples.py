"""Smoke tests: every example script must run and print its conclusion.

Examples are run in-process (imported as modules with a controlled
``sys.argv``) so coverage tools see them and failures produce real
tracebacks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", [], capsys)
        assert "AVF+SOFR" in out
        assert "first principles" in out
        assert "unreliable" in out  # the accelerated case gets flagged

    def test_spec_uniprocessor(self, capsys):
        out = run_example("spec_uniprocessor", ["gzip", "6000"], capsys)
        assert "register_file" in out
        assert "All methods agree" in out

    def test_datacenter_cluster(self, capsys):
        out = run_example("datacenter_cluster", [], capsys)
        assert "SOFR error" in out
        assert "central warning" in out

    def test_avionics(self, capsys):
        out = run_example("avionics_accelerated_test", [], capsys)
        assert "accelerated_test" in out
        assert "SoftArch tracks the exact MTTF" in out

    def test_combined_workload(self, capsys):
        out = run_example("combined_workload", [], capsys)
        assert "combined workload" in out
        assert "underestimates" in out

    def test_hybrid_methodology(self, capsys):
        out = run_example("hybrid_methodology", [], capsys)
        assert "hybrid" in out
        assert "best combination" in out

    def test_sharded_fleet(self, capsys):
        out = run_example("sharded_fleet", [], capsys)
        assert "one budget ledger" in out
        assert "cross-shard budget bought" in out
        assert "budget conserved" in out
        assert "bit-identical" in out

    def test_analysis_server(self, capsys):
        out = run_example("analysis_server", [], capsys)
        assert "request dedup" in out
        assert "SSE progress stream" in out
        assert "bit-identical to the direct" in out
        assert "1 coalesced" in out
        assert "stopped cleanly" in out


class TestReadmeSnippet:
    def test_quickstart_code_runs(self, capsys):
        # The README's quickstart block, verbatim.
        import repro

        profile = repro.busy_idle_profile(
            busy_time=repro.days(0.5), period=repro.days(1)
        )
        system = repro.SystemModel(
            [
                repro.Component(
                    "server", rate_per_second=3.2e-8, profile=profile
                )
            ]
        )
        print(repro.avf_sofr_mttf(system))
        print(repro.first_principles_mttf(system))
        print(
            repro.monte_carlo_mttf(
                system, repro.MonteCarloConfig(trials=5_000)
            )
        )
        print(repro.softarch_mttf(system))
        print(repro.validity_report(system).summary())
        out = capsys.readouterr().out
        assert "avf+sofr" in out
        assert "AVF step" in out
