"""Failure-injection tests: degenerate, adversarial, and extreme inputs.

The DESIGN.md testing strategy calls for deliberately hostile
configurations: zero/huge rates, single-cycle loops, enormous segment
counts, numerical extremes. Every case must either produce a correct
answer or fail loudly with a library exception — never a silent NaN.
"""

import math

import numpy as np
import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    SystemModel,
    avf_mttf,
    exact_component_mttf,
    first_principles_mttf,
    monte_carlo_component_mttf,
    softarch_component_mttf,
)
from repro.errors import ProfileError, ReproError
from repro.masking import PiecewiseProfile, busy_idle_profile, from_cycle_mask
from repro.reliability import FailureProcess
from repro.reliability.hazard import PiecewiseHazard


class TestDegenerateProfiles:
    def test_single_cycle_loop(self):
        # A one-cycle "loop" at 2 GHz: the smallest possible L.
        profile = from_cycle_mask(np.array([1.0]), 5e-10)
        assert exact_component_mttf(1e-6, profile) == pytest.approx(1e6)

    def test_always_masked(self):
        profile = PiecewiseProfile.constant(0.0, 10.0)
        assert math.isinf(exact_component_mttf(1.0, profile))
        assert math.isinf(avf_mttf(1.0, profile))
        assert math.isinf(softarch_component_mttf(1.0, profile))

    def test_never_masked(self):
        profile = PiecewiseProfile.constant(1.0, 10.0)
        for lam in (1e-12, 1.0, 1e6):
            assert exact_component_mttf(lam, profile) == pytest.approx(
                1.0 / lam
            )

    def test_vanishingly_short_vulnerable_window(self):
        # One nanosecond of vulnerability per day.
        profile = busy_idle_profile(1e-9, 86400.0)
        lam = 1.0
        exact = exact_component_mttf(lam, profile)
        # MTTF ~ L/(λ·A) for small per-iteration mass.
        assert exact == pytest.approx(86400.0 / 1e-9, rel=1e-3)

    def test_huge_segment_count(self):
        rng = np.random.default_rng(1)
        mask = rng.random(200_000) < 0.5
        profile = from_cycle_mask(mask, 1e-9)
        exact = exact_component_mttf(1e3, profile)
        assert math.isfinite(exact) and exact > 0
        sa = softarch_component_mttf(1e3, profile)
        assert sa == pytest.approx(exact, rel=1e-6)


class TestExtremeRates:
    def test_enormous_rate(self):
        profile = busy_idle_profile(5.0, 10.0)
        # 1e9 errors/second: failure is immediate once vulnerable.
        exact = exact_component_mttf(1e9, profile)
        assert exact == pytest.approx(1e-9, rel=1e-3)

    def test_tiny_rate(self):
        profile = busy_idle_profile(5.0, 10.0)
        exact = exact_component_mttf(1e-300, profile)
        assert exact == pytest.approx(2e300, rel=1e-6)

    def test_zero_rate_component(self):
        profile = busy_idle_profile(5.0, 10.0)
        comp = Component("c", 0.0, profile)
        est = monte_carlo_component_mttf(comp, MonteCarloConfig(trials=10))
        assert math.isinf(est.mttf_seconds)

    def test_negative_rate_rejected_everywhere(self):
        profile = busy_idle_profile(1.0, 2.0)
        with pytest.raises(ReproError):
            Component("c", -1.0, profile)
        with pytest.raises(ReproError):
            avf_mttf(-1.0, profile)
        with pytest.raises(ReproError):
            softarch_component_mttf(-1.0, profile)
        with pytest.raises(ReproError):
            profile.to_hazard(-1.0)


class TestNumericalExtremes:
    def test_subnormal_rates_no_silent_nan(self):
        h = PiecewiseHazard.from_segments([(1.0, 5e-324), (1.0, 1.0)])
        process = FailureProcess(h)
        assert math.isfinite(process.mttf())
        assert not math.isnan(process.variance())

    def test_mass_near_overflow_boundary(self):
        h = PiecewiseHazard.from_segments([(1.0, 800.0)])
        process = FailureProcess(h)
        assert process.mttf() == pytest.approx(1 / 800.0, rel=1e-6)

    def test_mixed_magnitudes_in_one_system(self):
        fast = Component(
            "fast", 1.0, busy_idle_profile(1.0, 2.0)
        )
        slow = Component(
            "slow", 1e-15, busy_idle_profile(1.0, 2.0)
        )
        system = SystemModel([fast, slow])
        combined = first_principles_mttf(system).mttf_seconds
        only_fast = first_principles_mttf(
            SystemModel([fast])
        ).mttf_seconds
        # The negligible component must not perturb the result.
        assert combined == pytest.approx(only_fast, rel=1e-9)

    def test_infinite_values_rejected_in_profiles(self):
        with pytest.raises(ProfileError):
            PiecewiseProfile([0.0, np.inf], [0.5])
        with pytest.raises(ProfileError):
            PiecewiseProfile([0.0, 1.0], [np.nan])

    def test_monte_carlo_huge_mass_trials_finite(self):
        profile = busy_idle_profile(5.0, 10.0)
        comp = Component("c", 1e6, profile)
        samples_cfg = MonteCarloConfig(trials=1_000, seed=1)
        est = monte_carlo_component_mttf(comp, samples_cfg)
        assert math.isfinite(est.mttf_seconds)
        assert est.mttf_seconds == pytest.approx(1e-6, rel=0.2)
