"""Tests for caches, TLBs, and the memory hierarchy."""

import pytest

from repro.errors import ConfigurationError
from repro.microarch import Cache, CacheSpec, Tlb, TlbSpec
from repro.microarch.caches import MemoryHierarchy


def small_cache(size=1024, assoc=2, line=64, latency=1, name="c"):
    return Cache(CacheSpec(name, size, assoc, line, latency))


class TestCache:
    def test_first_access_misses_then_hits(self):
        c = small_cache()
        assert not c.lookup(0x100)
        assert c.lookup(0x100)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = small_cache(line=64)
        c.lookup(0x100)
        assert c.lookup(0x13F)  # same 64-byte line

    def test_lru_eviction(self):
        # 2-way set: third distinct tag to one set evicts the LRU.
        c = small_cache(size=256, assoc=2, line=64)  # 2 sets
        n_sets = c.spec.n_sets
        line = 64
        set_stride = n_sets * line
        a, b, d = 0x0, set_stride, 2 * set_stride  # same set
        c.lookup(a)
        c.lookup(b)
        c.lookup(a)  # a is now MRU
        c.lookup(d)  # evicts b
        assert c.lookup(a)
        assert not c.lookup(b)

    def test_fill_does_not_count(self):
        c = small_cache()
        c.fill(0x100)
        assert c.accesses == 0
        assert c.lookup(0x100)  # prefilled line hits

    def test_miss_rate(self):
        c = small_cache()
        c.lookup(0x0)
        c.lookup(0x0)
        assert c.miss_rate == pytest.approx(0.5)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            Cache(CacheSpec("c", 1200, 2, 100, 1))

    def test_reset_stats(self):
        c = small_cache()
        c.lookup(0x0)
        c.reset_stats()
        assert c.accesses == 0


class TestTlb:
    def test_hit_after_fill(self):
        t = Tlb(TlbSpec("t", 4))
        assert not t.lookup(0x1000)
        assert t.lookup(0x1FFF)  # same 4K page

    def test_capacity_eviction(self):
        t = Tlb(TlbSpec("t", 2))
        t.lookup(0x0000)
        t.lookup(0x1000)
        t.lookup(0x2000)  # evicts page 0
        assert not t.lookup(0x0000)

    def test_lru_order(self):
        t = Tlb(TlbSpec("t", 2))
        t.lookup(0x0000)
        t.lookup(0x1000)
        t.lookup(0x0000)  # page 0 MRU
        t.lookup(0x2000)  # evicts page 1
        assert t.lookup(0x0000)
        assert not t.lookup(0x1000)


class TestMemoryHierarchy:
    def make(self, prefetch=False):
        l1 = small_cache(size=512, assoc=2, line=64, latency=1, name="L1")
        l2 = small_cache(size=4096, assoc=4, line=64, latency=10, name="L2")
        tlb = Tlb(TlbSpec("tlb", 64, miss_penalty=30))
        return MemoryHierarchy(l1, l2, tlb, 77, prefetch=prefetch)

    def test_cold_access_full_latency(self):
        h = self.make()
        # TLB miss 30 + L1 1 + L2 10 + memory 77.
        assert h.access(0x100) == 30 + 1 + 10 + 77

    def test_warm_access_l1_latency(self):
        h = self.make()
        h.access(0x100)
        assert h.access(0x100) == 1

    def test_l2_hit_path(self):
        h = self.make()
        h.access(0x0)
        # Touch enough lines mapping to the same L1 set to evict line 0
        # from L1 while it stays in the larger L2.
        n_sets = h.l1.spec.n_sets
        for k in range(1, 3):
            h.access(k * n_sets * 64)
        latency = h.access(0x0)
        assert latency == 1 + 10  # TLB hit, L1 miss, L2 hit

    def test_prefetch_hides_sequential_stream(self):
        h = self.make(prefetch=True)
        line = 64
        h.access(0x0)  # cold miss, prefetches line 1
        latencies = [h.access(line * k) for k in range(1, 6)]
        assert all(lat == 1 for lat in latencies)

    def test_no_prefetch_misses_every_line(self):
        h = self.make(prefetch=False)
        line = 64
        h.access(0x0)
        latencies = [h.access(line * k) for k in range(1, 6)]
        assert all(lat > 1 for lat in latencies)
