"""Streaming adaptive-precision engine tests.

Covers the PR-3 engine rewrite: in-order streaming moment reduction
(bit-identical to the gather-era engine at fixed chunking), the
precision-driven stopping rule, deterministic shard partitioning with
merge-equals-unsharded, per-point progress events, and the adaptive
audit trail carried through the ResultSet JSON round-trip.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    Component,
    MomentAccumulator,
    MonteCarloConfig,
    StoppingRule,
    SystemModel,
    accumulate_chunks,
    adaptive_chunk_configs,
    chunk_configs,
    merge_moments,
    monte_carlo_mttf,
    system_chunk_moments,
)
from repro.errors import ConfigurationError, EstimationError
from repro.masking import busy_idle_profile
from repro.methods import (
    ResultSet,
    evaluate_design_space,
    merge_result_sets,
    shard_select,
)
from repro.methods.cache import mc_token
from repro.methods.progress import ProgressEvent, relative_stderr
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def day_system(day_profile):
    return SystemModel(
        [Component("node", 2.0 / SECONDS_PER_DAY, day_profile)]
    )


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8, 100, 300, 1000)
    ]


class TestStoppingRule:
    def test_needs_a_target(self):
        with pytest.raises(EstimationError, match="target"):
            StoppingRule()

    def test_rejects_nonpositive_targets(self):
        with pytest.raises(EstimationError, match="positive"):
            StoppingRule(target_rel_stderr=0.0)

    def test_min_trials_blocks_early_satisfaction(self, day_system):
        config = MonteCarloConfig(trials=8_000, seed=1, chunks=8)
        moments = system_chunk_moments(
            day_system, chunk_configs(config)[0]
        )
        loose = StoppingRule(target_rel_stderr=0.5)
        assert loose.satisfied(moments)
        assert not StoppingRule(
            target_rel_stderr=0.5, min_trials=5_000
        ).satisfied(moments)

    def test_ci_halfwidth_target(self, day_system):
        config = MonteCarloConfig(trials=4_000, seed=1)
        moments = system_chunk_moments(
            day_system, chunk_configs(config)[0]
        )
        stderr = math.sqrt(
            moments.m2 / (moments.count - 1) / moments.count
        )
        tight = StoppingRule(target_ci_halfwidth=1.96 * stderr * 0.5)
        loose = StoppingRule(target_ci_halfwidth=1.96 * stderr * 2.0)
        assert loose.satisfied(moments)
        assert not tight.satisfied(moments)


class TestAdaptiveChunkPlan:
    def test_without_rule_equals_fixed_plan(self):
        config = MonteCarloConfig(trials=10_000, seed=3, chunks=4)
        assert adaptive_chunk_configs(config) == chunk_configs(config)

    def test_rule_without_extension_keeps_fixed_plan_seeds(self):
        fixed = MonteCarloConfig(trials=10_000, seed=3, chunks=4)
        adaptive = MonteCarloConfig(
            trials=10_000,
            seed=3,
            chunks=4,
            stopping=StoppingRule(target_rel_stderr=0.01),
        )
        assert adaptive_chunk_configs(adaptive) == chunk_configs(fixed)

    def test_budget_below_trials_truncates_plan(self):
        config = MonteCarloConfig(
            trials=10_000,
            seed=3,
            chunks=10,
            stopping=StoppingRule(
                target_rel_stderr=1e-12, max_trials=3_000
            ),
        )
        plan = adaptive_chunk_configs(config)
        assert plan == chunk_configs(
            MonteCarloConfig(trials=10_000, seed=3, chunks=10)
        )[: 3]
        assert sum(c.trials for c in plan) == 3_000

    def test_unreachable_target_respects_max_trials_budget(
        self, day_system
    ):
        estimate = monte_carlo_mttf(
            day_system,
            MonteCarloConfig(
                trials=10_000,
                seed=3,
                chunks=10,
                stopping=StoppingRule(
                    target_rel_stderr=1e-12, max_trials=3_000
                ),
            ),
        )
        assert estimate.trials == 3_000

    def test_budget_extension_preserves_prefix(self):
        base = MonteCarloConfig(trials=8_000, seed=3, chunks=4)
        extended = MonteCarloConfig(
            trials=8_000,
            seed=3,
            chunks=4,
            stopping=StoppingRule(
                target_rel_stderr=0.01, max_trials=20_000
            ),
        )
        plan = adaptive_chunk_configs(extended)
        assert plan[: 4] == chunk_configs(base)
        # max_trials is a hard cap: the plan covers it exactly.
        assert sum(c.trials for c in plan) == 20_000
        assert all(c.trials == 2_000 for c in plan[4:])
        assert len({c.seed for c in plan}) == len(plan)

    def test_budget_is_a_hard_cap_at_any_chunking(self):
        # Non-multiple budgets clamp the final chunk; even a monolithic
        # chunks=1 plan is cut down to the budget.
        for trials, chunks, max_trials in (
            (1_000_000, 1, 1_000),
            (100_000, 4, 30_000),
            (8_000, 4, 21_000),
        ):
            config = MonteCarloConfig(
                trials=trials,
                seed=3,
                chunks=chunks,
                stopping=StoppingRule(
                    target_rel_stderr=1e-12, max_trials=max_trials
                ),
            )
            plan = adaptive_chunk_configs(config)
            assert sum(c.trials for c in plan) == max_trials, (
                trials, chunks, max_trials,
            )


class TestMomentAccumulator:
    def _chunks(self, day_system, chunks=8):
        config = MonteCarloConfig(trials=8_000, seed=5, chunks=chunks)
        return [
            system_chunk_moments(day_system, chunk)
            for chunk in chunk_configs(config)
        ]

    def test_out_of_order_arrival_matches_in_order_fold(self, day_system):
        parts = self._chunks(day_system)
        in_order = MomentAccumulator(len(parts))
        for index, part in enumerate(parts):
            in_order.add(index, part)
        shuffled = MomentAccumulator(len(parts))
        order = np.random.default_rng(0).permutation(len(parts))
        for index in order:
            shuffled.add(int(index), parts[index])
        assert shuffled.moments == in_order.moments
        assert shuffled.moments == merge_moments(parts)

    def test_stop_decision_is_arrival_order_independent(self, day_system):
        parts = self._chunks(day_system)
        rule = StoppingRule(target_rel_stderr=0.05)
        stops = []
        for seed in range(5):
            accumulator = MomentAccumulator(len(parts), rule)
            order = np.random.default_rng(seed).permutation(len(parts))
            for index in order:
                accumulator.add(int(index), parts[index])
            stops.append(
                (accumulator.merged_chunks, accumulator.moments)
            )
        assert len(set(stops)) == 1
        assert stops[0][0] < len(parts)  # it did stop early

    def test_straggler_after_done_is_ignored(self, day_system):
        parts = self._chunks(day_system, chunks=4)
        accumulator = MomentAccumulator(
            4, StoppingRule(target_rel_stderr=0.9)
        )
        assert accumulator.add(0, parts[0])
        frozen = accumulator.moments
        accumulator.add(1, parts[1])
        assert accumulator.moments == frozen


class TestStreamingBitIdentity:
    """The acceptance bar: with the rule disabled at fixed chunking the
    streaming engine reproduces the serial chunked reduction to the bit,
    across worker counts and executors; with the rule enabled the result
    is still a pure function of the configuration."""

    def test_process_streaming_matches_serial_chunked(
        self, cluster_space
    ):
        mc = MonteCarloConfig(trials=4_000, seed=3, chunks=4)
        serial = evaluate_design_space(
            cluster_space, methods=["first_principles"], mc_config=mc
        )
        streamed = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=4,
            executor="process",
        )
        assert streamed == serial
        for label, system in cluster_space:
            direct = monte_carlo_mttf(system, mc)
            comparison = next(
                c for c in serial if c.system_label == label
            )
            assert comparison.reference == direct

    def test_adaptive_identical_across_workers_and_executors(
        self, cluster_space
    ):
        mc = MonteCarloConfig(
            trials=40_000,
            seed=3,
            chunks=20,
            stopping=StoppingRule(target_rel_stderr=0.05),
        )
        serial = evaluate_design_space(
            cluster_space, methods=["first_principles"], mc_config=mc
        )
        threaded = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=4,
        )
        processed = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=3,
            executor="process",
        )
        assert serial == threaded == processed

    def test_extension_past_budget_identical_across_executors(
        self, cluster_space
    ):
        # The lazily-submitted extension tail must reproduce the serial
        # adaptive run exactly (extension seeds are a pure function of
        # the chunk index, and folding stays in index order).
        mc = MonteCarloConfig(
            trials=1_000,
            seed=9,
            chunks=4,
            stopping=StoppingRule(
                target_rel_stderr=0.01, max_trials=20_000
            ),
        )
        serial = evaluate_design_space(
            cluster_space[:3], methods=["first_principles"], mc_config=mc
        )
        processed = evaluate_design_space(
            cluster_space[:3],
            methods=["first_principles"],
            mc_config=mc,
            workers=3,
            executor="process",
        )
        assert processed == serial
        # Points genuinely used the extension (more than the base plan).
        assert all(
            trials > 1_000
            for trials in serial.reference_trials().values()
        )

    def test_unsatisfiable_target_reproduces_fixed_run(self, day_system):
        fixed = monte_carlo_mttf(
            day_system, MonteCarloConfig(trials=8_000, seed=3, chunks=8)
        )
        exhausted = monte_carlo_mttf(
            day_system,
            MonteCarloConfig(
                trials=8_000,
                seed=3,
                chunks=8,
                stopping=StoppingRule(target_rel_stderr=1e-12),
            ),
        )
        assert exhausted == fixed


class TestStoppingConvergence:
    def test_achieved_stderr_meets_target(self, day_system):
        target = 0.03
        estimate = monte_carlo_mttf(
            day_system,
            MonteCarloConfig(
                trials=200_000,
                seed=11,
                chunks=100,
                stopping=StoppingRule(target_rel_stderr=target),
            ),
        )
        achieved = estimate.std_error_seconds / estimate.mttf_seconds
        assert achieved <= target
        assert estimate.trials < 200_000  # it stopped well short

    def test_known_distribution_estimate_within_ci(self):
        # Constant-vulnerability profile => exponential TTF with a
        # known mean 1/rate; the adaptive estimate must land within a
        # few achieved standard errors of the truth.
        profile = busy_idle_profile(SECONDS_PER_DAY, SECONDS_PER_DAY)
        rate = 4.0 / SECONDS_PER_DAY
        system = SystemModel([Component("const", rate, profile)])
        estimate = monte_carlo_mttf(
            system,
            MonteCarloConfig(
                trials=100_000,
                seed=2,
                chunks=50,
                stopping=StoppingRule(target_rel_stderr=0.02),
            ),
        )
        truth = 1.0 / rate
        assert abs(estimate.mttf_seconds - truth) <= (
            4.0 * estimate.std_error_seconds
        )

    def test_all_censored_prefix_never_stops_early(self, day_profile):
        # A zero-rate component draws only infinite TTFs; the rule must
        # not declare that "converged" — the run spends its budget and
        # reports the same legitimate infinity a fixed run would.
        system = SystemModel([Component("idle", 0.0, day_profile)])
        fixed = monte_carlo_mttf(
            system, MonteCarloConfig(trials=800, seed=1, chunks=4)
        )
        adaptive = monte_carlo_mttf(
            system,
            MonteCarloConfig(
                trials=800,
                seed=1,
                chunks=4,
                stopping=StoppingRule(target_rel_stderr=0.5),
            ),
        )
        assert math.isinf(adaptive.mttf_seconds)
        assert adaptive.trials == 800
        assert adaptive == fixed

    def test_accumulate_chunks_reports_early_stop(self, day_system):
        config = MonteCarloConfig(
            trials=40_000,
            seed=3,
            chunks=20,
            stopping=StoppingRule(target_rel_stderr=0.05),
        )
        accumulator = accumulate_chunks(
            lambda chunk: system_chunk_moments(day_system, chunk), config
        )
        assert accumulator.stopped_early
        assert accumulator.merged_chunks < 20
        assert config.stopping.satisfied(accumulator.moments)


class TestSharding:
    def test_shard_select_partitions_deterministically(self):
        items = list(range(11))
        shards = [shard_select(items, (i, 3)) for i in range(3)]
        assert shards[0] == [0, 3, 6, 9]
        assert shards[1] == [1, 4, 7, 10]
        assert shards[2] == [2, 5, 8]
        flat = sorted(x for shard in shards for x in shard)
        assert flat == items

    def test_invalid_shards_rejected(self, cluster_space):
        for bad in ((2, 2), (-1, 2), (0, 0)):
            with pytest.raises(ConfigurationError, match="shard"):
                evaluate_design_space(
                    cluster_space, methods=["avf_sofr"],
                    reference="exact", shard=bad,
                )

    def test_sharded_runs_merge_to_unsharded(self, cluster_space):
        mc = MonteCarloConfig(trials=3_000, seed=5, chunks=3)
        full = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc
        )
        shards = [
            evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=mc,
                shard=(i, 3),
                # exercise different executors per shard on purpose
                workers=1 + i,
                executor="process" if i == 1 else "thread",
            )
            for i in range(3)
        ]
        merged = merge_result_sets(shards)
        assert merged == full
        assert merged.shard is None

    def test_merge_rejects_incomplete_or_mixed_partitions(
        self, cluster_space
    ):
        s0 = evaluate_design_space(
            cluster_space, methods=["avf_sofr"], reference="exact",
            shard=(0, 2),
        )
        s1 = evaluate_design_space(
            cluster_space, methods=["avf_sofr"], reference="exact",
            shard=(1, 2),
        )
        with pytest.raises(ConfigurationError, match="missing"):
            merge_result_sets([s0])
        # Byte-identical duplicates collapse (an elastic fleet's
        # zombie + adopter legitimately both produce a slot) — but a
        # lone shard repeated still leaves the partition incomplete.
        with pytest.raises(ConfigurationError, match="missing"):
            merge_result_sets([s0, s0])
        assert merge_result_sets([s0, s1, s0]) == merge_result_sets(
            [s0, s1]
        )
        conflicting = replace(s0, mc_token="not-the-same-run")
        with pytest.raises(ConfigurationError, match="duplicate"):
            merge_result_sets([s0, s1, conflicting])
        bad = evaluate_design_space(
            cluster_space, methods=["avf_sofr"], reference="exact",
            shard=(1, 3),
        )
        with pytest.raises(ConfigurationError, match="shard counts"):
            merge_result_sets([s0, bad])
        with pytest.raises(ConfigurationError, match="sharded"):
            merge_result_sets(
                [evaluate_design_space(
                    cluster_space, methods=["avf_sofr"],
                    reference="exact",
                )]
            )
        assert merge_result_sets([s0, s1]) is not None

    def test_merge_rejects_mismatched_mc_configurations(
        self, cluster_space
    ):
        # Shards that came from runs with different Monte-Carlo
        # settings must not interleave silently.
        s0 = evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=MonteCarloConfig(trials=1_000, seed=5),
            shard=(0, 2),
        )
        s1 = evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=MonteCarloConfig(trials=2_000, seed=5),
            shard=(1, 2),
        )
        with pytest.raises(ConfigurationError, match="different runs"):
            merge_result_sets([s0, s1])

    def test_malformed_shard_raises_configuration_error(self):
        import json

        with pytest.raises(ConfigurationError, match="invalid shard"):
            ResultSet(comparisons=(), shard=(0,))  # type: ignore[arg-type]
        document = {
            "schema": "repro.resultset/v1",
            "comparisons": [],
            "shard": [0],
        }
        with pytest.raises(ConfigurationError, match="invalid shard"):
            ResultSet.from_json(json.dumps(document))

    def test_shard_survives_json_round_trip(self, cluster_space):
        sharded = evaluate_design_space(
            cluster_space, methods=["avf_sofr"], reference="exact",
            shard=(1, 2),
        )
        restored = ResultSet.from_json(sharded.to_json())
        assert restored == sharded
        assert restored.shard == (1, 2)


class TestAdaptiveAudit:
    def test_trials_and_stderr_survive_round_trip(self, cluster_space):
        mc = MonteCarloConfig(
            trials=40_000,
            seed=3,
            chunks=20,
            stopping=StoppingRule(target_rel_stderr=0.05),
        )
        run = evaluate_design_space(
            cluster_space, methods=["first_principles"], mc_config=mc
        )
        restored = ResultSet.from_json(run.to_json())
        assert restored.reference_trials() == run.reference_trials()
        assert restored.reference_rel_stderr() == (
            run.reference_rel_stderr()
        )
        for label, trials in restored.reference_trials().items():
            assert 0 < trials < 40_000, label
        for rel in restored.reference_rel_stderr().values():
            assert rel <= 0.05

    def test_mc_token_distinguishes_stopping_rules(self):
        fixed = MonteCarloConfig(trials=1_000, seed=0, chunks=2)
        adaptive = MonteCarloConfig(
            trials=1_000,
            seed=0,
            chunks=2,
            stopping=StoppingRule(target_rel_stderr=0.01),
        )
        tighter = MonteCarloConfig(
            trials=1_000,
            seed=0,
            chunks=2,
            stopping=StoppingRule(target_rel_stderr=0.001),
        )
        tokens = {mc_token(c) for c in (fixed, adaptive, tighter)}
        assert len(tokens) == 3
        # Fixed-count tokens keep the pre-stopping format (warm caches
        # from earlier releases stay valid).
        assert "stopping" not in mc_token(fixed)


class TestProgressEvents:
    def test_streaming_process_run_emits_chunk_events(
        self, cluster_space
    ):
        events: list[ProgressEvent] = []
        evaluate_design_space(
            cluster_space[:2],
            methods=["first_principles"],
            mc_config=MonteCarloConfig(trials=2_000, seed=1, chunks=4),
            workers=2,
            executor="process",
            progress=events.append,
        )
        kinds = {e.kind for e in events}
        assert {"point-start", "point-done"} <= kinds
        done = [e for e in events if e.kind == "point-done"]
        assert {e.label for e in done} == {"C=2", "C=8"}
        assert all(e.trials == 2_000 for e in done)

    def test_serial_run_emits_point_events(self, cluster_space):
        events: list[ProgressEvent] = []
        evaluate_design_space(
            cluster_space[:2],
            methods=["avf_sofr"],
            reference="exact",
            progress=events.append,
        )
        assert [e.kind for e in events] == [
            "point-start", "point-done", "point-start", "point-done",
        ]

    def test_warm_cache_events_flag_cached_on_every_executor(
        self, cluster_space
    ):
        from repro.methods import ComponentCache

        mc = MonteCarloConfig(trials=1_000, seed=1, chunks=2)
        cache = ComponentCache()
        evaluate_design_space(
            cluster_space[:2], methods=["first_principles"],
            mc_config=mc, cache=cache,
        )
        for executor, workers in (("thread", 1), ("process", 2)):
            events: list[ProgressEvent] = []
            evaluate_design_space(
                cluster_space[:2],
                methods=["first_principles"],
                mc_config=mc,
                cache=cache,
                executor=executor,
                workers=workers,
                progress=events.append,
            )
            kinds = [e.kind for e in events]
            assert kinds == [
                "point-start", "point-done",
                "point-start", "point-done",
            ], executor
            done = [e for e in events if e.kind == "point-done"]
            assert all(e.cached for e in done), executor

    def test_relative_stderr_helper(self, day_system):
        config = MonteCarloConfig(trials=4_000, seed=1)
        moments = system_chunk_moments(
            day_system, chunk_configs(config)[0]
        )
        rel = relative_stderr(moments)
        assert rel is not None and 0 < rel < 1
        assert relative_stderr(None) is None


class TestSweepAudit:
    def test_sweep_results_carry_trial_counts(self, day_profile):
        from repro.core import component_sweep

        outcome = component_sweep(
            {"day": day_profile},
            [1e8, 1e9],
            MonteCarloConfig(trials=2_000, seed=1, chunks=2),
        )
        assert [r.monte_carlo_trials for r in outcome] == [2_000, 2_000]
        for result in outcome:
            assert result.monte_carlo_rel_stderr > 0

    def test_sharded_sweep_keeps_points_aligned(self, day_profile):
        from repro.core import component_sweep

        mc = MonteCarloConfig(trials=2_000, seed=1, chunks=2)
        full = component_sweep({"day": day_profile}, [1e8, 1e9, 1e10], mc)
        shard = component_sweep(
            {"day": day_profile}, [1e8, 1e9, 1e10], mc, shard=(1, 2)
        )
        assert [r.point.label for r in shard] == [
            full[1].point.label
        ]
        assert shard[0].monte_carlo_mttf == full[1].monte_carlo_mttf
        assert shard.result_set.shard == (1, 2)
