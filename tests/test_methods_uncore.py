"""Tests for the uncore/ECC-aware estimator (Cho et al.-style)."""

import pytest

from repro.core import Component, SystemModel
from repro.methods import available, get
from repro.methods.uncore import (
    PROTECTION_CLASSES,
    EccProtection,
    protection_for,
    uncore_partition,
)
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def mixed_system(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return SystemModel(
        [
            Component("l2_cache", 10 * rate, day_profile),
            Component("issue_queue", 4 * rate, day_profile),
            Component("alu", rate, day_profile),
        ]
    )


class TestRegistration:
    def test_registered_and_discoverable(self):
        assert "uncore_ecc" in available()
        estimator = get("uncore_ecc")
        assert estimator.per_component
        assert not estimator.is_stochastic

    def test_label_on_estimates(self, mixed_system):
        assert get("uncore_ecc").estimate(mixed_system).method == (
            "uncore_ecc"
        )


class TestClassification:
    def test_keyword_classes(self):
        assert protection_for("l2_cache") is PROTECTION_CLASSES["ecc"]
        assert protection_for("register_file") is (
            PROTECTION_CLASSES["ecc"]
        )
        assert protection_for("issue_queue") is (
            PROTECTION_CLASSES["parity"]
        )
        assert protection_for("alu") is PROTECTION_CLASSES["none"]

    def test_ecc_wins_over_parity_keywords(self):
        assert protection_for("store_buffer_cache") is (
            PROTECTION_CLASSES["ecc"]
        )

    def test_partition_fractions_validated(self):
        with pytest.raises(ValueError, match="exceeds 1"):
            EccProtection("bad", corrected=0.8, detected=0.3)
        with pytest.raises(ValueError, match="corrected"):
            EccProtection("bad", corrected=-0.1, detected=0.0)


class TestPartition:
    def test_rates_split_conservatively(self, mixed_system):
        for part in uncore_partition(mixed_system):
            total = (
                part.corrected_rate + part.flush_rate + part.sdc_rate
            )
            assert total == pytest.approx(part.raw_rate_per_second)
            assert part.sdc_rate > 0

    def test_protection_only_raises_mttf(self, mixed_system):
        protected = get("uncore_ecc").estimate(mixed_system)
        bare = get("first_principles").estimate(mixed_system)
        assert protected.mttf_seconds > bare.mttf_seconds

    def test_unprotected_system_matches_first_principles(
        self, day_profile
    ):
        system = SystemModel(
            [Component("alu", 2.0 / SECONDS_PER_DAY, day_profile)]
        )
        protected = get("uncore_ecc").estimate(system)
        bare = get("first_principles").estimate(system)
        assert protected.mttf_seconds == bare.mttf_seconds


class TestEngineIntegration:
    def test_usable_from_evaluate_design_space(self, mixed_system):
        from repro.methods import evaluate_design_space

        result = evaluate_design_space(
            [("uncore", mixed_system)],
            methods=["uncore_ecc", "avf_sofr"],
            reference="exact",
        )
        comparison = result[0]
        assert "uncore_ecc" in comparison.estimates
        # ECC-protected MTTF must exceed the unprotected reference.
        assert comparison.error("uncore_ecc") > 0
