"""Smoke and claim tests for the experiment harness.

Each experiment runs with reduced trials; assertions check the paper's
qualitative claims, mirroring the benchmark suite but at unit-test cost.
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness import all_experiments, get_experiment
from repro.harness.spec_setup import (
    PAPER_COMPONENTS,
    masking_trace_for,
    paper_dilation,
    processor_profile,
    spec_uniprocessor_system,
)

FAST_TRIALS = 8_000


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        artifacts = set(all_experiments())
        assert {
            "table1", "table2", "fig3", "fig4", "fig5",
            "fig6a", "fig6b", "sec5.1", "sec5.2", "sec5.4",
        } <= artifacts

    def test_ablations_registered(self):
        artifacts = set(all_experiments())
        assert any(a.startswith("ablation.") for a in artifacts)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")


class TestSpecSetup:
    def test_masking_trace_cached(self):
        a = masking_trace_for("gzip", 3_000)
        b = masking_trace_for("gzip", 3_000)
        assert a is b  # lru_cache hit

    def test_uniprocessor_has_four_components(self):
        system = spec_uniprocessor_system("gzip", 3_000)
        assert [c.name for c in system.components] == list(PAPER_COMPONENTS)

    def test_processor_profile_mixes_units(self):
        profile = processor_profile("swim", 3_000)
        trace = masking_trace_for("swim", 3_000)
        expected = (
            trace.avf("int_unit")
            + trace.avf("fp_unit")
            + trace.avf("decode_unit")
        ) / 3.0
        assert profile.avf == pytest.approx(expected, rel=1e-9)

    def test_dilation_factor(self):
        assert paper_dilation(40_000) == pytest.approx(2500.0)

    def test_dilated_profile_keeps_avf(self):
        base = processor_profile("gzip", 3_000)
        dilated = processor_profile(
            "gzip", 3_000, dilate_to_paper_window=True
        )
        assert dilated.avf == pytest.approx(base.avf, rel=1e-12)
        assert dilated.period == pytest.approx(
            base.period * paper_dilation(3_000)
        )


class TestExperimentClaims:
    def test_fig3_shape(self):
        result = get_experiment("fig3").run(
            trials=FAST_TRIALS, validate_mc=False
        )
        errors = [
            float(c.strip("%+")) / 100
            for c in result.tables[0].column("rel. error")
        ]
        assert max(errors) > 0.15
        assert min(errors) < 0.005

    def test_fig4_endpoints(self):
        result = get_experiment("fig4").run(
            trials=FAST_TRIALS, validate_mc=False
        )
        errors = [
            abs(float(c.strip("%+-"))) / 100
            for c in result.tables[0].column("rel. error")
        ]
        assert errors[0] == pytest.approx(0.146, abs=0.01)
        assert errors[-1] == pytest.approx(0.344, abs=0.01)

    def test_sec51_bound(self):
        result = get_experiment("sec5.1").run(
            benchmarks=("gzip",), trials=FAST_TRIALS
        )
        errors = [
            abs(float(c.strip("%+-"))) / 100
            for c in result.tables[0].column("AVF-step error")
        ]
        assert max(errors) < 0.005

    def test_sec52_bound(self):
        result = get_experiment("sec5.2").run(benchmarks=("gzip",))
        errors = [
            abs(float(c.strip("%+-"))) / 100
            for c in result.tables[0].column("AVF-step error")
        ]
        assert max(errors) < 0.005

    def test_fig5_error_grows(self):
        result = get_experiment("fig5").run(
            trials=FAST_TRIALS, n_times_s_values=(1e8, 1e12)
        )
        by_workload: dict = {}
        table = result.tables[0]
        for workload, error in zip(
            table.column("workload"), table.column("error")
        ):
            by_workload.setdefault(workload, []).append(
                abs(float(error.strip("%+-"))) / 100
            )
        for errors in by_workload.values():
            assert errors[-1] > errors[0]

    def test_fig6b_small_clusters_safe(self):
        result = get_experiment("fig6b").run(
            trials=FAST_TRIALS,
            n_times_s_values=(1e8,),
            component_counts=(2, 5000),
        )
        table = result.tables[0]
        rows = list(
            zip(
                table.column("C"),
                table.column("error (zero phase)"),
            )
        )
        small = [
            abs(float(e.strip("%+-"))) / 100 for c, e in rows if c == "2"
        ]
        large = [
            abs(float(e.strip("%+-"))) / 100 for c, e in rows if c == "5000"
        ]
        assert max(small) < 0.05
        assert max(large) > 0.25

    def test_sec54_softarch_exact(self):
        result = get_experiment("sec5.4").run(
            trials=FAST_TRIALS,
            n_times_s_values=(1e10,),
            component_counts=(1, 5000),
        )
        errors = [
            abs(float(c.strip("%+-"))) / 100
            for c in result.tables[0].column("SoftArch vs exact")
        ]
        assert max(errors) < 0.01

    def test_result_renders(self):
        result = get_experiment("table2").run()
        assert "table2" in result.render()
        assert "###" in result.render_markdown()
