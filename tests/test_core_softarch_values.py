"""Tests for the instruction-level SoftArch value-graph frontend."""

import pytest

from repro.core import SoftArchRates, softarch_from_value_graph
from repro.core.softarch_values import _def_use_edges, _output_reachability
from repro.errors import EstimationError
from repro.microarch import InstructionRecord, MachineConfig, OpClass
from repro.microarch.pipeline import PipelineModel
from repro.ser import paper_unit_rate_per_second
from repro.core import Component, SystemModel, first_principles_mttf
from repro.workloads import spec_benchmark, synthesize_trace
from repro.microarch import simulate


def alu(dest, srcs=(), pc=0x1000):
    return InstructionRecord(OpClass.INT_ALU, dest=dest, srcs=srcs, pc=pc)


def store(srcs, pc=0x2000):
    return InstructionRecord(
        OpClass.STORE, srcs=srcs, pc=pc, mem_addr=0x4000_0000
    )


def run_schedule(trace):
    return PipelineModel(MachineConfig.power4_like()).run(trace)


class TestDefUse:
    def test_edges(self):
        trace = [alu(1), alu(2, (1,)), store((2, 1))]
        producers, consumers = _def_use_edges(trace)
        assert producers[1] == [0]
        assert sorted(producers[2]) == [0, 1]
        assert consumers[0] == [1, 2]
        assert consumers[1] == [2]

    def test_redefinition_breaks_chain(self):
        trace = [alu(1), alu(1), alu(2, (1,))]
        _producers, consumers = _def_use_edges(trace)
        assert consumers[0] == []  # first def overwritten before use
        assert consumers[1] == [2]


class TestReachability:
    def test_store_reaches(self):
        trace = [alu(1), store((1,))]
        _p, consumers = _def_use_edges(trace)
        reach = _output_reachability(trace, consumers)
        assert reach == [True, True]

    def test_dead_value_unreachable(self):
        trace = [alu(1), alu(2), store((2,))]
        _p, consumers = _def_use_edges(trace)
        reach = _output_reachability(trace, consumers)
        assert reach[0] is False  # r1 never consumed
        assert reach[1] is True

    def test_transitive_reach(self):
        trace = [alu(1), alu(2, (1,)), alu(3, (2,)), store((3,))]
        _p, consumers = _def_use_edges(trace)
        reach = _output_reachability(trace, consumers)
        assert all(reach)

    def test_branch_counts_as_output(self):
        trace = [
            alu(1),
            InstructionRecord(OpClass.BRANCH, srcs=(1,), pc=0x10, taken=True),
        ]
        _p, consumers = _def_use_edges(trace)
        reach = _output_reachability(trace, consumers)
        assert reach == [True, True]


class TestTimeline:
    def test_dead_code_produces_no_events(self):
        # Values never reaching a store/branch are fully masked.
        trace = [alu(i % 20 + 1, pc=0x1000 + 4 * i) for i in range(50)]
        schedule = run_schedule(trace)
        timeline = softarch_from_value_graph(
            trace, schedule, MachineConfig.power4_like(),
            SoftArchRates.paper_rates(),
        )
        assert timeline.event_count == 0
        assert timeline.mttf() == float("inf")

    def test_store_chain_produces_events(self):
        trace = [alu(1), alu(2, (1,)), store((2,))]
        schedule = run_schedule(trace)
        timeline = softarch_from_value_graph(
            trace, schedule, MachineConfig.power4_like(),
            SoftArchRates.paper_rates(),
        )
        assert timeline.event_count >= 2  # both values + the store
        assert timeline.mttf() > 0

    def test_zero_rates_never_fail(self):
        trace = [alu(1), store((1,))]
        schedule = run_schedule(trace)
        timeline = softarch_from_value_graph(
            trace, schedule, MachineConfig.power4_like(), SoftArchRates()
        )
        assert timeline.mttf() == float("inf")

    def test_mismatched_schedule_rejected(self):
        trace = [alu(1)]
        schedule = run_schedule([alu(1), alu(2)])
        with pytest.raises(EstimationError):
            softarch_from_value_graph(
                trace, schedule, MachineConfig.power4_like(),
                SoftArchRates.paper_rates(),
            )


class TestAgainstProfileModel:
    def test_value_graph_masks_more_than_profile(self):
        # The value graph lets errors die when consumers never reach an
        # output, so its MTTF upper-bounds the Section-4.1 profile-based
        # MTTF while staying within the same order of magnitude.
        cfg = MachineConfig.power4_like()
        trace = synthesize_trace(spec_benchmark("gzip"), 8_000, seed=2)
        result = simulate(trace, cfg, workload="gzip")
        timeline = softarch_from_value_graph(
            trace, result.schedule, cfg, SoftArchRates.paper_rates()
        )
        value_graph_mttf = timeline.mttf()
        components = [
            Component(
                name,
                paper_unit_rate_per_second(name),
                result.masking_trace.profile(name),
            )
            for name in (
                "int_unit", "fp_unit", "decode_unit", "register_file"
            )
        ]
        profile_mttf = first_principles_mttf(
            SystemModel(components)
        ).mttf_seconds
        assert value_graph_mttf >= profile_mttf * 0.99
        assert value_graph_mttf < profile_mttf * 20

    def test_rates_validation(self):
        with pytest.raises(EstimationError):
            SoftArchRates(register_file_rate=-1.0)
        with pytest.raises(EstimationError):
            SoftArchRates(unit_rates={"int": -1.0})
        with pytest.raises(EstimationError):
            SoftArchRates(register_file_entries=0)
