"""Property-based tests for the hazard machinery (hypothesis).

These pin the invariants everything else relies on: monotonicity of the
cumulative hazard, exactness of inversion, agreement between the closed
forms and quadrature, and the AVF limit theorem.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.hazard import NestedHazard, PiecewiseHazard
from repro.reliability.process import FailureProcess


@st.composite
def piecewise_hazards(draw, max_segments=6, max_rate=5.0):
    n = draw(st.integers(min_value=1, max_value=max_segments))
    durations = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=n,
            max_size=n,
        )
    )
    # Exact zero keeps the masked-segment case; the positive branch
    # floors at 1e-6 so subnormal rates can't overflow reciprocals or
    # scalings downstream.
    rates = draw(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=1e-6, max_value=max_rate),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return PiecewiseHazard.from_segments(list(zip(durations, rates)))


@st.composite
def nested_hazards(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    segments = []
    for _ in range(n):
        duration = draw(st.floats(min_value=0.5, max_value=20.0))
        inner = draw(piecewise_hazards(max_segments=3))
        segments.append((duration, inner))
    return NestedHazard(segments)


class TestPiecewiseProperties:
    @given(piecewise_hazards())
    def test_cumulative_monotone(self, hazard):
        taus = np.linspace(0, hazard.period, 53)
        values = hazard.cumulative(taus)
        assert np.all(np.diff(values) >= -1e-12)

    @given(piecewise_hazards())
    def test_cumulative_endpoints(self, hazard):
        assert float(hazard.cumulative(0.0)) == 0.0
        assert float(hazard.cumulative(hazard.period)) == pytest.approx(
            hazard.mass, rel=1e-9, abs=1e-12
        )

    @given(piecewise_hazards(), st.floats(min_value=1e-6, max_value=1.0))
    def test_inversion_round_trip(self, hazard, fraction):
        if hazard.mass <= 0:
            return
        u = fraction * hazard.mass
        tau = float(hazard.invert(u))
        assert 0 <= tau <= hazard.period
        assert float(hazard.cumulative(tau)) == pytest.approx(
            u, rel=1e-9, abs=1e-12 * hazard.mass
        )

    @given(piecewise_hazards())
    def test_survival_integral_bounds(self, hazard):
        value = hazard.survival_integral(hazard.period)
        assert 0 < value <= hazard.period * (1 + 1e-12)

    @given(piecewise_hazards(), st.floats(min_value=0.1, max_value=0.9))
    def test_partial_integral_monotone(self, hazard, fraction):
        x = fraction * hazard.period
        partial = hazard.survival_integral(x)
        full = hazard.survival_integral(hazard.period)
        assert partial <= full + 1e-12

    @given(piecewise_hazards(), st.floats(min_value=0.1, max_value=8.0))
    def test_scaling_scales_mass(self, hazard, factor):
        assert hazard.scaled(factor).mass == pytest.approx(
            hazard.mass * factor, rel=1e-12
        )

    @given(piecewise_hazards(), st.integers(min_value=2, max_value=4))
    def test_tiling_preserves_mttf(self, hazard, n):
        # An n-fold tiled hazard describes the same cyclic process, so
        # the first-failure time distribution must be identical.
        if hazard.mass <= 0:
            return
        original = FailureProcess(hazard).mttf()
        tiled = FailureProcess(hazard.tiled(n)).mttf()
        assert tiled == pytest.approx(original, rel=1e-9)


class TestNestedProperties:
    @settings(max_examples=30)
    @given(nested_hazards())
    def test_cumulative_monotone(self, hazard):
        taus = np.linspace(0, hazard.period, 41)
        values = hazard.cumulative(taus)
        assert np.all(np.diff(values) >= -1e-9)

    @settings(max_examples=30)
    @given(nested_hazards(), st.floats(min_value=1e-6, max_value=1.0))
    def test_inversion_round_trip(self, hazard, fraction):
        # Subnormal masses (< ~1e-300) carry only a few bits of
        # precision; the library clamps them safely but round-trip
        # accuracy is physically meaningless there.
        if hazard.mass <= 1e-300:
            return
        u = fraction * hazard.mass
        tau = float(hazard.invert(u))
        assert 0 <= tau <= hazard.period * (1 + 1e-9)
        assert float(hazard.cumulative(min(tau, hazard.period))) == (
            pytest.approx(u, rel=1e-7, abs=1e-9 * hazard.mass)
        )

    @settings(max_examples=20)
    @given(nested_hazards())
    def test_survival_integral_bounds(self, hazard):
        value = hazard.survival_integral(hazard.period)
        assert 0 < value <= hazard.period * (1 + 1e-9)


class TestProcessProperties:
    @given(piecewise_hazards())
    def test_mttf_positive(self, hazard):
        mttf = FailureProcess(hazard).mttf()
        assert mttf > 0

    @given(piecewise_hazards(), st.floats(min_value=1.5, max_value=10.0))
    def test_mttf_decreases_with_rate(self, hazard, factor):
        base = FailureProcess(hazard).mttf()
        # Subnormal masses overflow both MTTFs to inf, where strict
        # monotonicity is vacuous.
        if hazard.mass <= 0 or not math.isfinite(base):
            return
        scaled = FailureProcess(hazard.scaled(factor)).mttf()
        assert scaled < base * (1 + 1e-9)

    @given(piecewise_hazards())
    def test_avf_limit(self, hazard):
        # Scale the hazard down until λ·L is tiny: the exact MTTF must
        # converge to the AVF-step value 1/(rate·AVF) (Section 3.1.1).
        if hazard.mass <= 0:
            return
        tiny = hazard.scaled(1e-9 / hazard.mass)
        exact = FailureProcess(tiny).mttf()
        avf_mttf = tiny.period / tiny.mass
        assert exact == pytest.approx(avf_mttf, rel=1e-6)

    @given(piecewise_hazards())
    def test_variance_non_negative(self, hazard):
        if hazard.mass <= 0:
            return
        assert FailureProcess(hazard).variance() >= -1e-6
