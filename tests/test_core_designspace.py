"""Tests for the design-space sweep engine (repro.core.designspace)."""

import math

import pytest

from repro.core import (
    DesignPoint,
    MonteCarloConfig,
    component_sweep,
    system_sweep,
    table2_points,
)
from repro.errors import DesignSpaceError
from repro.masking import busy_idle_profile
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def workloads(day_profile):
    return {"day": day_profile}


class TestDesignPoint:
    def test_n_times_s(self):
        point = DesignPoint("day", 1e8, 100.0, components=8)
        assert point.n_times_s == pytest.approx(1e10)

    def test_rate(self):
        point = DesignPoint("day", 1e9, 1.0)
        # 1e9 bits at 1e-8/year = 10 errors/year.
        assert point.rate_per_second * 8760 * 3600 == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(DesignSpaceError):
            DesignPoint("day", 0.0, 1.0)
        with pytest.raises(DesignSpaceError):
            DesignPoint("day", 1e6, -1.0)
        with pytest.raises(DesignSpaceError):
            DesignPoint("day", 1e6, 1.0, components=0)


class TestComponentSweep:
    def test_errors_grow_with_mass(self, workloads):
        results = component_sweep(
            workloads,
            (1e8, 1e12),
            MonteCarloConfig(trials=30_000, seed=1),
        )
        assert len(results) == 2
        assert abs(results[1].avf_error) > abs(results[0].avf_error)

    def test_first_principles_attached(self, workloads):
        results = component_sweep(
            workloads, (1e9,), MonteCarloConfig(trials=5_000, seed=1)
        )
        res = results[0]
        # MC and exact must agree within noise.
        assert res.first_principles_mttf == pytest.approx(
            res.monte_carlo_mttf,
            abs=6 * res.monte_carlo_stderr,
        )

    def test_softarch_optional(self, workloads):
        without = component_sweep(
            workloads, (1e9,), MonteCarloConfig(trials=1_000, seed=1)
        )
        with_sa = component_sweep(
            workloads,
            (1e9,),
            MonteCarloConfig(trials=1_000, seed=1),
            include_softarch=True,
        )
        assert without[0].softarch_mttf is None
        assert with_sa[0].softarch_mttf is not None
        assert with_sa[0].softarch_mttf == pytest.approx(
            with_sa[0].first_principles_mttf, rel=1e-6
        )


class TestSystemSweep:
    def test_sofr_error_grows_with_components(self, workloads):
        results = system_sweep(
            workloads,
            (1e8,),
            (2, 50_000),
            MonteCarloConfig(trials=30_000, seed=2),
        )
        by_c = {r.point.components: abs(r.sofr_error) for r in results}
        assert by_c[50_000] > by_c[2]

    def test_rows_cover_cross_product(self, workloads):
        results = system_sweep(
            workloads,
            (1e8, 1e9),
            (2, 8, 5000),
            MonteCarloConfig(trials=2_000, seed=3),
        )
        assert len(results) == 6

    def test_sofr_value_is_component_over_c(self, workloads):
        results = system_sweep(
            workloads, (1e8,), (10,), MonteCarloConfig(trials=20_000, seed=4)
        )
        res = results[0]
        # SOFR = component MC MTTF / C; component MTTF ~ 2 years here.
        assert res.sofr_only_mttf == pytest.approx(
            730 * SECONDS_PER_DAY / 10, rel=0.05
        )


class TestTable2Points:
    def test_full_grid_size(self):
        points = table2_points(["a", "b"])
        assert len(points) == 2 * 5 * 5 * 5

    def test_custom_axes(self):
        points = table2_points(
            ["w"], n_values=(1e6,), s_values=(1.0, 5.0), c_values=(2,)
        )
        assert len(points) == 2
        assert {p.scaling for p in points} == {1.0, 5.0}
