"""Regression tests for the PR-4 round of streaming-engine bugfixes.

Three satellites ride along with the pipelined scheduler:

* progress events must never report more ``merged_chunks`` than the
  accumulator actually folded — chunks whose futures were cancelled in
  the completion race (cancel() issued after the chunk finished) are
  ignored by the fold and must be ignored by the accounting too;
* ``DiskCache`` entries must be written atomically (temp file +
  ``os.replace``) so two sharded processes sharing a ``--cache-dir``
  can interleave freely, and a torn/truncated entry must read as a
  miss, never poison a warm rerun;
* ``merge_result_sets`` (and the CLI ``merge`` command) must reject a
  duplicate shard artifact — e.g. the same ``--shard 0/4`` JSON passed
  twice — instead of silently double-counting points.
"""

import json
import threading

import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    StoppingRule,
    SystemModel,
)
from repro.errors import ConfigurationError
from repro.harness.runner import main
from repro.methods import evaluate_design_space, merge_result_sets
from repro.methods.cache import DiskCache, ENTRY_SCHEMA
from repro.methods.progress import (
    CHUNK_MERGED,
    POINT_DONE,
    ProgressEvent,
)
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8, 100, 300, 1000)
    ]


class TestMergedChunkAccounting:
    """merged_chunks is the fold count — cancellation races included."""

    def _check_events(self, events, chunk_trials):
        by_label: dict[str, list[ProgressEvent]] = {}
        for event in events:
            by_label.setdefault(event.label, []).append(event)
        for label, stream in by_label.items():
            chunks = [e for e in stream if e.kind == CHUNK_MERGED]
            done = [e for e in stream if e.kind == POINT_DONE]
            assert len(done) == 1, label
            done = done[0]
            merged = [e.merged_chunks for e in chunks]
            # Strictly increasing, bounded by the plan, and consistent
            # with the folded trial counts at every step.
            assert merged == sorted(set(merged)), label
            for event in chunks:
                assert event.merged_chunks <= event.total_chunks
                assert event.trials == (
                    event.merged_chunks * chunk_trials
                ), label
            if merged:
                assert done.merged_chunks >= merged[-1], label
            # The final report equals the folds behind the estimate —
            # a cancelled-after-completion chunk never inflates it.
            assert done.trials == done.merged_chunks * chunk_trials, label

    def test_streaming_process_path_counts_only_folds(
        self, cluster_space
    ):
        mc = MonteCarloConfig(
            trials=8_000,
            seed=3,
            chunks=8,
            stopping=StoppingRule(target_rel_stderr=0.05),
        )
        events: list[ProgressEvent] = []
        evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=4,
            executor="process",
            progress=events.append,
        )
        assert any(e.stopped_early for e in events)
        self._check_events(events, chunk_trials=1_000)

    def test_pipelined_scheduler_counts_only_folds(self, cluster_space):
        mc = MonteCarloConfig(
            trials=8_000,
            seed=3,
            chunks=8,
            stopping=StoppingRule(target_rel_stderr=0.05),
        )
        events: list[ProgressEvent] = []
        evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=4,
            pipeline_methods=True,
            reallocate_budget=True,
            progress=events.append,
        )
        self._check_events(events, chunk_trials=1_000)


class TestDiskCacheAtomicity:
    def test_truncated_entry_reads_as_miss_and_is_repaired(
        self, tmp_path
    ):
        cache = DiskCache(tmp_path)
        cache.put("key", {"mttf_seconds": 1.0})
        path = cache._path("key")
        # Simulate the torn write an interleaved plain open/write pair
        # could leave behind: valid prefix, truncated tail.
        full = path.read_text(encoding="utf-8")
        path.write_text(full[: len(full) // 2], encoding="utf-8")
        assert cache.get("key") is None
        assert cache.peek("key") is None
        # The next writer repairs the entry (last write wins).
        cache.put("key", {"mttf_seconds": 2.0})
        assert cache.get("key") == {"mttf_seconds": 2.0}

    def test_foreign_schema_reads_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache._path("key")
        path.write_text(
            json.dumps({"schema": "something-else", "value": {}}),
            encoding="utf-8",
        )
        assert cache.get("key") is None

    def test_no_temp_files_survive_writes(self, tmp_path):
        cache = DiskCache(tmp_path)
        for index in range(20):
            cache.put(f"key-{index}", {"mttf_seconds": float(index)})
        leftovers = [
            p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
        assert len(cache) == 20

    def test_interleaved_writers_never_tear_an_entry(self, tmp_path):
        # Two "shards" hammering the same keys concurrently: every
        # entry must stay readable (atomic replace, last write wins).
        caches = [DiskCache(tmp_path) for _ in range(2)]
        errors: list[Exception] = []

        def writer(cache, worker):
            try:
                for round_index in range(25):
                    for key in ("shared-a", "shared-b"):
                        cache.put(
                            key,
                            {"mttf_seconds": float(worker + round_index)},
                        )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(cache, index))
            for index, cache in enumerate(caches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        reader = DiskCache(tmp_path)
        for key in ("shared-a", "shared-b"):
            value = reader.get(key)
            assert value is not None and "mttf_seconds" in value
        for path in tmp_path.iterdir():
            if path.suffix == ".json" and not path.name.startswith(
                ".tmp-"
            ):
                entry = json.loads(path.read_text(encoding="utf-8"))
                assert entry["schema"] == ENTRY_SCHEMA


class TestDuplicateShardRejection:
    def _shard_files(self, cluster_space, tmp_path):
        paths = []
        for index in range(2):
            result = evaluate_design_space(
                cluster_space,
                methods=["avf_sofr"],
                reference="exact",
                shard=(index, 2),
            )
            path = tmp_path / f"shard{index}.json"
            result.to_json(path)
            paths.append(path)
        return paths

    def test_identical_duplicate_dedups_conflicting_refused(
        self, cluster_space, tmp_path
    ):
        from repro.methods import ResultSet

        shard0, shard1 = self._shard_files(cluster_space, tmp_path)
        # An identical duplicate artifact is deduplicated (the elastic
        # zombie + adopter case: both legitimately produced the slot,
        # byte-for-byte the same) — the merge equals the honest one.
        honest = merge_result_sets(
            [ResultSet.from_json(shard0), ResultSet.from_json(shard1)]
        )
        deduped = merge_result_sets(
            [
                ResultSet.from_json(shard0),
                ResultSet.from_json(shard0),
                ResultSet.from_json(shard1),
            ]
        )
        assert deduped == honest
        # A duplicate slot with *different* contents is still refused.
        import dataclasses

        conflicting = dataclasses.replace(
            ResultSet.from_json(shard0), mc_token="tampered"
        )
        with pytest.raises(ConfigurationError, match="duplicate shard"):
            merge_result_sets(
                [
                    ResultSet.from_json(shard0),
                    conflicting,
                    ResultSet.from_json(shard1),
                ]
            )

    def test_cli_merge_fails_loudly_on_duplicates(
        self, cluster_space, tmp_path, capsys
    ):
        shard0, shard1 = self._shard_files(cluster_space, tmp_path)
        out = tmp_path / "merged.json"
        # Same artifact twice is deduplicated to a lone shard 0, which
        # is an incomplete partition: exit code 1, no file, loud reason.
        assert main(
            ["merge", str(shard0), str(shard0), "--json", str(out)]
        ) == 1
        assert "missing shards" in capsys.readouterr().err
        assert not out.exists()
        # The honest partition still merges.
        assert main(
            ["merge", str(shard0), str(shard1), "--json", str(out)]
        ) == 0
        assert out.exists()

    def test_partition_must_be_exactly_complete(
        self, cluster_space, tmp_path
    ):
        from repro.methods import ResultSet

        shard0, _ = self._shard_files(cluster_space, tmp_path)
        with pytest.raises(ConfigurationError, match="missing shards"):
            merge_result_sets([ResultSet.from_json(shard0)])
