"""Tests for instruction-trace serialisation and the simulator CLI."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.microarch import (
    InstructionRecord,
    OpClass,
    load_trace,
    save_trace,
)
from repro.microarch.cli import main as simulate_main
from repro.workloads import spec_benchmark, synthesize_trace


class TestTraceRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        trace = synthesize_trace(spec_benchmark("gzip"), 500, seed=3)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace

    def test_round_trip_all_op_kinds(self, tmp_path):
        trace = [
            InstructionRecord(OpClass.INT_ALU, dest=1, srcs=(2, 3), pc=0x10),
            InstructionRecord(
                OpClass.LOAD, dest=4, srcs=(1,), pc=0x14,
                mem_addr=0x4000_0000,
            ),
            InstructionRecord(
                OpClass.STORE, srcs=(4, 1), pc=0x18, mem_addr=0x4000_0008
            ),
            InstructionRecord(
                OpClass.BRANCH, srcs=(4,), pc=0x1C, taken=True
            ),
            InstructionRecord(OpClass.FP_DIV, dest=40, srcs=(41, 42), pc=0x20),
        ]
        path = tmp_path / "ops.npz"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_trace([], tmp_path / "empty.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.asarray(99),
            op=np.zeros(1, dtype=np.int8),
            dest=np.full(1, -1, dtype=np.int16),
            srcs=np.full((1, 3), -1, dtype=np.int16),
            pc=np.zeros(1, dtype=np.int64),
            mem_addr=np.full(1, -1, dtype=np.int64),
            taken=np.zeros(1, dtype=bool),
        )
        with pytest.raises(TraceError):
            load_trace(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "fields.npz"
        np.savez_compressed(path, version=np.asarray(1))
        with pytest.raises(TraceError):
            load_trace(path)


class TestSimulateCli:
    def test_synthesize_run(self, capsys):
        code = simulate_main(["gzip", "--instructions", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "register_file" in out

    def test_save_and_reload_flow(self, tmp_path, capsys):
        trace_path = tmp_path / "t.npz"
        masking_path = tmp_path / "m.npz"
        code = simulate_main(
            [
                "mcf",
                "--instructions", "1500",
                "--save-trace", str(trace_path),
                "--save-masking", str(masking_path),
            ]
        )
        assert code == 0
        assert trace_path.exists() and masking_path.exists()
        capsys.readouterr()
        code = simulate_main(["--load-trace", str(trace_path)])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_no_input_errors(self, capsys):
        assert simulate_main([]) == 2
        assert "error" in capsys.readouterr().err
