"""Tests for workload profiles, trace synthesis, and long-run builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.masking import PiecewiseProfile
from repro.microarch.isa import OpClass
from repro.units import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.workloads import (
    SPEC_FP_NAMES,
    SPEC_INT_NAMES,
    combined_workload,
    day_workload,
    spec_benchmark,
    spec_benchmarks,
    synthesize_trace,
    week_workload,
)


class TestBenchmarkRegistry:
    def test_paper_counts(self):
        # Section 4.1: 9 integer and 12 floating point benchmarks.
        assert len(SPEC_INT_NAMES) == 9
        assert len(SPEC_FP_NAMES) == 12

    def test_suite_filter(self):
        ints = spec_benchmarks("int")
        assert set(ints) == set(SPEC_INT_NAMES)
        assert all(p.suite == "int" for p in ints.values())

    def test_lookup(self):
        assert spec_benchmark("mcf").name == "mcf"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_benchmark("doom")
        with pytest.raises(ConfigurationError):
            spec_benchmarks("vector")

    def test_fp_benchmarks_have_fp_ops(self):
        for name in SPEC_FP_NAMES:
            mix = spec_benchmark(name).mix
            assert any(op.is_fp for op in mix)

    def test_int_benchmarks_have_no_fp_ops(self):
        for name in SPEC_INT_NAMES:
            mix = spec_benchmark(name).mix
            assert not any(op.is_fp for op in mix)


class TestSynthesis:
    def test_length_exact(self):
        trace = synthesize_trace(spec_benchmark("gzip"), 1234, seed=0)
        assert len(trace) == 1234

    def test_deterministic(self):
        a = synthesize_trace(spec_benchmark("gzip"), 500, seed=7)
        b = synthesize_trace(spec_benchmark("gzip"), 500, seed=7)
        assert a == b

    def test_seed_changes_trace(self):
        a = synthesize_trace(spec_benchmark("gzip"), 500, seed=1)
        b = synthesize_trace(spec_benchmark("gzip"), 500, seed=2)
        assert a != b

    def test_branch_fraction_approximated(self):
        profile = spec_benchmark("gcc")
        trace = synthesize_trace(profile, 20_000, seed=3)
        frac = sum(1 for r in trace if r.op.is_branch) / len(trace)
        assert frac == pytest.approx(profile.branch_fraction, rel=0.25)

    def test_memory_fraction_approximated(self):
        profile = spec_benchmark("mcf")
        trace = synthesize_trace(profile, 20_000, seed=3)
        frac = sum(1 for r in trace if r.op.is_memory) / len(trace)
        expected = (
            profile.mix[OpClass.LOAD] + profile.mix[OpClass.STORE]
        ) / sum(profile.mix.values())
        # Branches dilute the mix; tolerate that plus sampling noise.
        assert frac == pytest.approx(expected * (1 - profile.branch_fraction),
                                     rel=0.3)

    def test_memory_ops_have_addresses(self):
        trace = synthesize_trace(spec_benchmark("swim"), 5_000, seed=1)
        assert all(
            r.mem_addr is not None for r in trace if r.op.is_memory
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            synthesize_trace(spec_benchmark("gzip"), 0)


class TestLongRunWorkloads:
    def test_day_defaults(self):
        p = day_workload()
        assert p.period == pytest.approx(SECONDS_PER_DAY)
        assert p.avf == pytest.approx(0.5)

    def test_day_custom_fraction(self):
        assert day_workload(0.25).avf == pytest.approx(0.25)

    def test_day_validation(self):
        with pytest.raises(ConfigurationError):
            day_workload(0.0)

    def test_week_defaults(self):
        p = week_workload()
        assert p.period == pytest.approx(SECONDS_PER_WEEK)
        assert p.avf == pytest.approx(5.0 / 7.0)

    def test_week_validation(self):
        with pytest.raises(ConfigurationError):
            week_workload(8.0)

    def test_combined_structure(self):
        a = PiecewiseProfile.from_segments([(1e-3, 1.0), (1e-3, 0.0)])
        b = PiecewiseProfile.from_segments([(1e-3, 0.2), (1e-3, 0.8)])
        c = combined_workload(a, b)
        assert c.period == pytest.approx(SECONDS_PER_DAY)
        assert c.avf == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)

    def test_combined_validation(self):
        a = PiecewiseProfile.constant(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            combined_workload(a, a, period=0.0)
