"""Tests for the hybrid method selector (repro.core.hybrid)."""

import math

import pytest

from repro.core import (
    Component,
    SystemModel,
    exact_component_mttf,
    first_principles_mttf,
    hybrid_component_mttf,
    hybrid_system_mttf,
)
from repro.core.validity import Regime
from repro.masking import busy_idle_profile
from repro.units import SECONDS_PER_DAY


def day_component(mass: float, multiplicity: int = 1) -> Component:
    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    rate = mass / profile.vulnerable_time
    return Component("node", rate, profile, multiplicity=multiplicity)


class TestComponentSelection:
    def test_safe_regime_uses_avf(self):
        result = hybrid_component_mttf(day_component(1e-6))
        assert result.regime is Regime.SAFE
        assert result.estimate.method == "hybrid[avf]"
        exact = exact_component_mttf(
            day_component(1e-6).rate_per_second,
            day_component(1e-6).profile,
        )
        assert result.estimate.mttf_seconds == pytest.approx(
            exact, rel=1e-5
        )

    def test_caution_regime_uses_correction(self):
        comp = day_component(0.02)
        result = hybrid_component_mttf(comp)
        assert result.regime is Regime.CAUTION
        assert result.estimate.method == "hybrid[avf+correction]"
        exact = exact_component_mttf(comp.rate_per_second, comp.profile)
        # Corrected estimator: residual O(m^2) ~ 4e-4.
        assert result.estimate.mttf_seconds == pytest.approx(
            exact, rel=2e-3
        )

    def test_unreliable_regime_uses_exact(self):
        comp = day_component(5.0)
        result = hybrid_component_mttf(comp)
        assert result.regime is Regime.UNRELIABLE
        assert result.estimate.method == "hybrid[first_principles]"
        exact = exact_component_mttf(comp.rate_per_second, comp.profile)
        assert result.estimate.mttf_seconds == pytest.approx(exact)

    def test_bound_reported(self):
        comp = day_component(0.5)
        result = hybrid_component_mttf(comp)
        assert result.error_bound == pytest.approx(0.25)

    def test_str_mentions_regime(self):
        text = str(hybrid_component_mttf(day_component(1e-6)))
        assert "safe" in text


class TestSystemSelection:
    def test_safe_system_uses_sofr(self):
        system = SystemModel([day_component(1e-7, multiplicity=4)])
        result = hybrid_system_mttf(system)
        assert result.regime is Regime.SAFE
        assert result.estimate.method == "hybrid[avf+sofr]"
        exact = first_principles_mttf(system).mttf_seconds
        assert result.estimate.mttf_seconds == pytest.approx(
            exact, rel=1e-5
        )

    def test_cluster_escalates_to_exact(self):
        # Per-component mass tiny, but C drives the system mass up: the
        # hybrid must refuse SOFR and return the exact value.
        system = SystemModel([day_component(1e-4, multiplicity=50_000)])
        result = hybrid_system_mttf(system)
        assert result.regime is not Regime.SAFE
        assert result.estimate.method == "hybrid[first_principles]"
        exact = first_principles_mttf(system).mttf_seconds
        assert result.estimate.mttf_seconds == pytest.approx(exact)

    def test_hybrid_always_close_to_exact(self):
        # The selling point: across regimes, the hybrid stays within a
        # small tolerance of first principles while AVF+SOFR does not.
        from repro.core import avf_sofr_mttf

        for mass, mult in ((1e-6, 2), (0.03, 10), (2.0, 1000)):
            system = SystemModel([day_component(mass, multiplicity=mult)])
            exact = first_principles_mttf(system).mttf_seconds
            hybrid = hybrid_system_mttf(system).estimate.mttf_seconds
            assert abs(hybrid - exact) / exact < 5e-3
        # ... whereas plain AVF+SOFR is off by >30% at the last point.
        system = SystemModel([day_component(2.0, multiplicity=1000)])
        plain = avf_sofr_mttf(system).mttf_seconds
        exact = first_principles_mttf(system).mttf_seconds
        assert abs(plain - exact) / exact > 0.3
