"""Tests for exponentiality diagnostics."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.reliability import (
    coefficient_of_variation,
    exponentiality_report,
    ks_statistic_exponential,
)


class TestCoV:
    def test_exponential_sample_cov_near_one(self, rng):
        samples = rng.exponential(scale=3.0, size=100_000)
        assert coefficient_of_variation(samples) == pytest.approx(1.0, abs=0.02)

    def test_deterministic_sample_cov_zero(self):
        samples = np.full(100, 2.5)
        assert coefficient_of_variation(samples) == pytest.approx(0.0)

    def test_needs_two_samples(self):
        with pytest.raises(EstimationError):
            coefficient_of_variation(np.array([1.0]))

    def test_rejects_zero_mean(self):
        with pytest.raises(EstimationError):
            coefficient_of_variation(np.zeros(10))


class TestKs:
    def test_exponential_sample_small_distance(self, rng):
        samples = rng.exponential(scale=2.0, size=50_000)
        assert ks_statistic_exponential(samples) < 0.01

    def test_uniform_sample_large_distance(self, rng):
        samples = rng.uniform(0.9, 1.1, size=50_000)
        assert ks_statistic_exponential(samples) > 0.3

    def test_rejects_negative(self):
        with pytest.raises(EstimationError):
            ks_statistic_exponential(np.array([-1.0, 1.0]))


class TestReport:
    def test_exponential_looks_exponential(self, rng):
        samples = rng.exponential(scale=1.0, size=20_000)
        report = exponentiality_report(samples)
        assert report.looks_exponential
        assert report.sample_size == 20_000

    def test_bursty_ttf_flagged(self, rng):
        # A mixture of very short and very long failure times — the
        # signature of long-phase masking — is not exponential.
        short = rng.exponential(0.05, size=10_000)
        long = 100.0 + rng.exponential(0.05, size=10_000)
        report = exponentiality_report(np.concatenate([short, long]))
        assert not report.looks_exponential

    def test_infinities_dropped(self, rng):
        samples = np.concatenate(
            [rng.exponential(1.0, size=5_000), [np.inf, np.inf]]
        )
        report = exponentiality_report(samples)
        assert report.sample_size == 5_000

    def test_needs_finite_samples(self):
        with pytest.raises(EstimationError):
            exponentiality_report(np.array([np.inf, np.inf]))
