"""Analysis-service tests: wire protocol, quota, jobs, HTTP end-to-end.

The end-to-end sections run a real :class:`BackgroundServer` on an
ephemeral port and talk to it with the stdlib client, asserting the
service's three contracts: results over HTTP are **bit-identical** to
direct in-process calls, concurrent same-fingerprint submissions
**coalesce** onto one estimation, and the SSE stream speaks only the
**documented progress vocabulary** (and shrugs off client disconnects).
"""

import json
import threading

import pytest

from repro.core import Component, MonteCarloConfig, StoppingRule, SystemModel
from repro.errors import ConfigurationError
from repro.masking import PiecewiseProfile, busy_idle_profile
from repro.methods import progress as progress_mod
from repro.service import (
    BackgroundServer,
    JobManager,
    JobSpec,
    QuotaExceeded,
    ServiceClient,
    TrialQuota,
    mc_config_from_dict,
    mc_config_to_dict,
    stopping_rule_from_dict,
    stopping_rule_to_dict,
)
from repro.service.client import ServiceError
from repro.units import SECONDS_PER_DAY

#: Every documented progress-event kind (the SSE vocabulary).
EVENT_KINDS = {
    value
    for name, value in vars(progress_mod).items()
    if name.isupper() and isinstance(value, str)
}


def cluster_space(day_profile, sizes=(2, 8)):
    rate = 2.0 / SECONDS_PER_DAY
    return tuple(
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in sizes
    )


@pytest.fixture
def small_spec(day_profile) -> JobSpec:
    return JobSpec(
        space=cluster_space(day_profile),
        methods=("sofr_only",),
        mc=MonteCarloConfig(trials=2_000, seed=7, chunks=2),
    )


@pytest.fixture
def failing_spec() -> JobSpec:
    # Valid at submission time, fails at run time: the arrival sampler
    # cannot terminate on a never-vulnerable (AVF = 0) component.
    dead = PiecewiseProfile.from_segments([(10.0, 0.0), (5.0, 0.0)])
    return JobSpec(
        space=(("dead", SystemModel([Component("z", 1e-5, dead)])),),
        methods=("sofr_only",),
        mc=MonteCarloConfig(trials=500, seed=1, method="arrival"),
    )


class TestJobSpecWire:
    def test_round_trip_preserves_fingerprint(self, small_spec):
        over_wire = json.loads(json.dumps(small_spec.to_dict()))
        rebuilt = JobSpec.from_dict(over_wire)
        assert (
            rebuilt.content_fingerprint == small_spec.content_fingerprint
        )
        assert rebuilt.mc == small_spec.mc

    def test_tenant_does_not_change_fingerprint(self, small_spec):
        relabeled = small_spec.with_tenant("acme")
        assert (
            relabeled.content_fingerprint
            == small_spec.content_fingerprint
        )

    def test_mc_settings_change_fingerprint(self, small_spec, day_profile):
        other = JobSpec(
            space=small_spec.space,
            methods=small_spec.methods,
            mc=MonteCarloConfig(trials=2_000, seed=8, chunks=2),
        )
        assert (
            other.content_fingerprint != small_spec.content_fingerprint
        )

    def test_stopping_rule_round_trip(self):
        rule = StoppingRule(
            target_rel_stderr=0.05, min_trials=500, max_trials=40_000
        )
        rebuilt = stopping_rule_from_dict(
            json.loads(json.dumps(stopping_rule_to_dict(rule)))
        )
        assert rebuilt == rule
        mc = MonteCarloConfig(trials=1_000, stopping=rule)
        assert mc_config_from_dict(mc_config_to_dict(mc)) == mc

    def test_trial_cost_counts_stochastic_estimators(self, day_profile):
        space = cluster_space(day_profile, sizes=(2, 8, 32))
        mc = MonteCarloConfig(trials=1_000)
        # sofr_only + the monte_carlo reference = 2 stochastic runs
        # over 3 points.
        spec = JobSpec(space=space, methods=("sofr_only",), mc=mc)
        assert spec.trial_cost() == 1_000 * 2 * 3
        # A purely deterministic job costs nothing.
        exact = JobSpec(
            space=space,
            methods=("avf_sofr",),
            reference="first_principles",
            mc=mc,
        )
        assert exact.trial_cost() == 0
        # An adaptive rule is billed at its extension ceiling.
        adaptive = JobSpec(
            space=space,
            methods=("sofr_only",),
            mc=MonteCarloConfig(
                trials=1_000,
                stopping=StoppingRule(
                    target_rel_stderr=0.01, max_trials=5_000
                ),
            ),
        )
        assert adaptive.trial_cost() == 5_000 * 2 * 3

    def test_rejects_wrong_schema(self, small_spec):
        data = small_spec.to_dict()
        data["schema"] = "repro.job/v0"
        with pytest.raises(ConfigurationError, match="repro.job/v1"):
            JobSpec.from_dict(data)

    def test_rejects_unknown_method(self, small_spec):
        data = small_spec.to_dict()
        data["methods"] = ["clairvoyance"]
        with pytest.raises(ConfigurationError, match="clairvoyance"):
            JobSpec.from_dict(data)

    def test_rejects_unknown_mc_field(self, small_spec):
        data = small_spec.to_dict()
        data["mc"]["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            JobSpec.from_dict(data)

    def test_rejects_empty_space(self, small_spec):
        data = small_spec.to_dict()
        data["space"] = []
        with pytest.raises(ConfigurationError, match="space"):
            JobSpec.from_dict(data)

    def test_aliases_resolve_at_submission(self, day_profile):
        spec = JobSpec(
            space=cluster_space(day_profile),
            methods=("exact",),
            reference="mc",
        )
        assert spec.methods == ("first_principles",)
        assert spec.reference == "monte_carlo"


class TestTrialQuota:
    def test_unmetered_admits_everything(self):
        quota = TrialQuota()
        decision = quota.charge("t1", 10**9)
        assert decision.admitted

    def test_single_tenant_owns_the_pool(self):
        quota = TrialQuota(pool=10_000)
        assert quota.charge("solo", 10_000).admitted
        with pytest.raises(QuotaExceeded):
            quota.charge("solo", 1)

    def test_pool_splits_fairly_across_tenants(self):
        quota = TrialQuota(pool=10_000, unit=100)
        quota.charge("a", 4_000)
        # b's arrival halves the shares: a has spent 4000 of its 5000,
        # b gets its own 5000.
        assert quota.charge("b", 5_000).admitted
        with pytest.raises(QuotaExceeded) as denied:
            quota.charge("a", 2_000)
        assert denied.value.decision.share == 5_000
        assert quota.charge("a", 1_000).admitted

    def test_refund_restores_headroom(self):
        quota = TrialQuota(pool=1_000)
        quota.charge("t", 1_000)
        quota.refund("t", 1_000)
        assert quota.charge("t", 800).admitted

    def test_decisions_are_deterministic(self):
        def replay():
            quota = TrialQuota(pool=9_999, unit=7)
            log = []
            for tenant, ask in [
                ("a", 3_000), ("b", 2_000), ("a", 2_500),
                ("c", 4_000), ("b", 1_000),
            ]:
                try:
                    log.append(quota.charge(tenant, ask).to_dict())
                except QuotaExceeded as error:
                    log.append(error.decision.to_dict())
            return log

        assert replay() == replay()

    def test_snapshot_reports_spend_and_shares(self):
        quota = TrialQuota(pool=8_000, unit=10)
        quota.charge("a", 1_500)
        snap = quota.snapshot()
        assert snap["pool"] == 8_000
        assert snap["tenants"]["a"]["spent"] == 1_500


class TestJobManager:
    def test_duplicate_submission_coalesces(self, small_spec):
        manager = JobManager(workers=1)
        try:
            job1, coalesced1 = manager.submit(small_spec)
            job2, coalesced2 = manager.submit(
                small_spec.with_tenant("other")
            )
            assert (coalesced1, coalesced2) == (False, True)
            assert job1 is job2
            assert job1.coalesced == 1
            assert job1.tenants == ["default", "other"]
            assert job1.wait(timeout=60)
            assert job1.state == "done"
            snapshot = manager.fleet_snapshot()
            assert snapshot["submissions"] == 2
            assert snapshot["coalesced"] == 1
        finally:
            manager.close()

    def test_coalesced_submission_is_not_billed(self, small_spec):
        quota = TrialQuota(pool=small_spec.trial_cost())
        manager = JobManager(workers=1, quota=quota)
        try:
            manager.submit(small_spec)
            # The pool is fully committed; only dedup lets this pass.
            job, coalesced = manager.submit(small_spec)
            assert coalesced
            assert quota.snapshot()["tenants"]["default"]["spent"] == (
                small_spec.trial_cost()
            )
        finally:
            manager.close()

    def test_failed_job_refunds_and_allows_retry(self, failing_spec):
        quota = TrialQuota(pool=failing_spec.trial_cost())
        manager = JobManager(workers=1, quota=quota)
        try:
            job, _ = manager.submit(failing_spec)
            assert job.wait(timeout=60)
            assert job.state == "failed"
            assert "EstimationError" in job.error
            assert quota.snapshot()["tenants"]["default"]["spent"] == 0
            # A failed job is not a coalesce target: the retry is a
            # fresh job (and the refund funds it).
            retry, coalesced = manager.submit(failing_spec)
            assert not coalesced
            assert retry.id != job.id
        finally:
            manager.close()

    def test_events_are_buffered_for_late_listeners(self, small_spec):
        manager = JobManager(workers=1)
        try:
            job, _ = manager.submit(small_spec)
            assert job.wait(timeout=60)
            # Attach after completion: the full history replays.
            events, cursor, finished = job.next_events(0, timeout=0.1)
            assert finished
            kinds = [e["kind"] for e in events]
            assert kinds.count("point-start") == len(small_spec.space)
            assert kinds.count("point-done") == len(small_spec.space)
            assert set(kinds) <= EVENT_KINDS
            # And the cursor protocol terminates cleanly.
            more, _, finished = job.next_events(cursor, timeout=0.1)
            assert more == [] and finished
        finally:
            manager.close()


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.address)


@pytest.fixture(scope="module")
def module_spec():
    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    return JobSpec(
        space=cluster_space(profile, sizes=(2, 8, 32)),
        methods=("sofr_only", "avf_sofr"),
        mc=MonteCarloConfig(trials=2_000, seed=11, chunks=2),
    )


class TestHttpEndToEnd:
    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_served_result_is_bit_identical_to_direct(
        self, client, module_spec
    ):
        direct = module_spec.run()
        submitted = client.submit(module_spec)
        payload = client.wait(submitted["job"]["id"])
        served_bytes = json.dumps(payload["result"], sort_keys=True)
        direct_bytes = json.dumps(direct.to_dict(), sort_keys=True)
        assert served_bytes == direct_bytes
        # And the rebuilt ResultSet is semantically identical too.
        assert client.result(submitted["job"]["id"]).to_dict() == (
            direct.to_dict()
        )

    def test_concurrent_duplicates_coalesce(self, client, day_profile):
        spec = JobSpec(
            space=cluster_space(day_profile, sizes=(4,)),
            methods=("sofr_only",),
            mc=MonteCarloConfig(trials=3_000, seed=23, chunks=3),
        )
        results = []

        def submit():
            results.append(client.submit(spec))

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = {r["job"]["id"] for r in results}
        assert len(ids) == 1, "duplicates must share one job"
        assert sum(r["coalesced"] for r in results) == 3
        final = client.wait(ids.pop())
        assert final["job"]["coalesced"] == 3

    def test_sse_stream_speaks_only_the_documented_vocabulary(
        self, client, module_spec
    ):
        submitted = client.submit(module_spec)  # coalesces or replays
        events = list(client.events(submitted["job"]["id"]))
        names = [name for name, _ in events]
        assert names[-1] == "done"
        progress_events = [p for n, p in events if n == "progress"]
        assert progress_events, "stream must carry progress events"
        assert {p["kind"] for p in progress_events} <= EVENT_KINDS
        # Every payload decodes as a documented ProgressEvent.
        for payload in progress_events:
            progress_mod.ProgressEvent.from_dict(payload)
        done = events[-1][1]
        assert done["state"] == "done"

    def test_client_disconnect_does_not_kill_the_job(
        self, client, day_profile
    ):
        spec = JobSpec(
            space=cluster_space(day_profile, sizes=(2, 4, 8, 16)),
            methods=("sofr_only",),
            mc=MonteCarloConfig(trials=4_000, seed=31, chunks=4),
        )
        submitted = client.submit(spec)
        job_id = submitted["job"]["id"]
        stream = client.events(job_id)
        next(stream)  # the stream is live...
        stream.close()  # ...and now the client walks away.
        payload = client.wait(job_id, timeout=120)
        assert payload["job"]["state"] == "done"
        # A fresh listener still gets the full replay afterwards.
        names = [name for name, _ in client.events(job_id)]
        assert names[-1] == "done"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as error:
            client.job("job-999999")
        assert error.value.status == 404
        with pytest.raises(ServiceError) as error:
            list(client.events("job-999999"))
        assert error.value.status == 404

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServiceError) as error:
            client.submit({"schema": "repro.job/v1", "space": []})
        assert error.value.status == 400

    def test_non_json_body_is_400(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.address + "/v1/jobs",
            data=b"not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request, timeout=10)
        assert error.value.code == 400

    def test_wrong_method_is_405(self, client, server):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(
                server.address + "/v1/jobs", timeout=10
            )
        assert error.value.code == 405

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as error:
            client._request("GET", "/v2/everything")
        assert error.value.status == 404

    def test_fleet_snapshot_shape(self, client):
        snap = client.fleet()
        assert set(snap) >= {
            "workers", "engine", "jobs", "submissions", "coalesced",
            "cache", "quota",
        }
        assert snap["submissions"] >= snap["coalesced"]
        assert set(snap["jobs"]) == {
            "queued", "running", "done", "failed",
        }

    def test_failed_job_surfaces_over_http(self, client, failing_spec):
        submitted = client.submit(failing_spec)
        with pytest.raises(ServiceError) as error:
            client.wait(submitted["job"]["id"], timeout=60)
        assert error.value.status == 500
        assert "EstimationError" in str(error.value)


class TestHttpQuota:
    def test_quota_denial_is_429_with_decision(self, day_profile):
        spec = JobSpec(
            space=cluster_space(day_profile, sizes=(2,)),
            methods=("sofr_only",),
            mc=MonteCarloConfig(trials=1_000, seed=3),
        )
        # Pool covers exactly one submission's 2000-trial cost.
        with BackgroundServer(
            workers=1, quota_trials=spec.trial_cost()
        ) as background:
            client = ServiceClient(background.address, tenant="acme")
            first = client.submit(spec)
            assert not first["coalesced"]
            # Different seed = different fingerprint: no dedup rescue,
            # and acme's pool is exhausted.
            other = JobSpec(
                space=spec.space,
                methods=spec.methods,
                mc=MonteCarloConfig(trials=1_000, seed=4),
            )
            with pytest.raises(ServiceError) as denied:
                client.submit(other)
            assert denied.value.status == 429
            decision = denied.value.payload["quota"]
            assert decision["tenant"] == "acme"
            assert not decision["admitted"]
            # The duplicate still coalesces free of charge.
            again = client.submit(spec)
            assert again["coalesced"]
            client.wait(first["job"]["id"])
