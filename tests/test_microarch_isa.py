"""Tests for the ISA definitions."""

import pytest

from repro.errors import TraceError
from repro.microarch import InstructionRecord, OpClass
from repro.microarch.isa import NUM_ARCH_REGS, validate_trace


class TestOpClass:
    def test_unit_mapping(self):
        assert OpClass.INT_ALU.unit == "int"
        assert OpClass.INT_DIV.unit == "int"
        assert OpClass.FP_MUL.unit == "fp"
        assert OpClass.LOAD.unit == "ls"
        assert OpClass.STORE.unit == "ls"
        assert OpClass.BRANCH.unit == "br"

    def test_predicates(self):
        assert OpClass.LOAD.is_memory
        assert not OpClass.INT_ALU.is_memory
        assert OpClass.BRANCH.is_branch
        assert OpClass.FP_DIV.is_fp
        assert OpClass.INT_MUL.is_int


class TestInstructionRecord:
    def test_valid_alu(self):
        rec = InstructionRecord(OpClass.INT_ALU, dest=3, srcs=(1, 2), pc=0x100)
        assert rec.dest == 3

    def test_rejects_register_out_of_range(self):
        with pytest.raises(TraceError):
            InstructionRecord(OpClass.INT_ALU, dest=NUM_ARCH_REGS)
        with pytest.raises(TraceError):
            InstructionRecord(OpClass.INT_ALU, dest=1, srcs=(NUM_ARCH_REGS,))

    def test_memory_needs_address(self):
        with pytest.raises(TraceError):
            InstructionRecord(OpClass.LOAD, dest=1, srcs=(2,))

    def test_store_has_no_dest(self):
        with pytest.raises(TraceError):
            InstructionRecord(
                OpClass.STORE, dest=1, srcs=(2, 3), mem_addr=0x1000
            )

    def test_too_many_sources(self):
        with pytest.raises(TraceError):
            InstructionRecord(OpClass.INT_ALU, dest=1, srcs=(1, 2, 3, 4))


class TestValidateTrace:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            validate_trace([])

    def test_wrong_type_rejected(self):
        with pytest.raises(TraceError):
            validate_trace(["not an instruction"])

    def test_valid_trace_passes(self):
        validate_trace([InstructionRecord(OpClass.INT_ALU, dest=1)])
