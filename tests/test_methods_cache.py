"""Disk-cache tests: round-trip, invalidation, warm-rerun behaviour."""

import json

import pytest

from repro.core import Component, MonteCarloConfig, SystemModel
from repro.masking import busy_idle_profile
from repro.methods import (
    ComponentCache,
    DiskCache,
    evaluate_design_space,
    mc_token,
)
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def system(day_profile):
    return SystemModel(
        [Component("node", 2.0 / SECONDS_PER_DAY, day_profile)]
    )


class TestMcToken:
    def test_none_is_exact(self):
        assert mc_token(None) == "exact"

    def test_every_field_distinguished(self):
        base = MonteCarloConfig(trials=100, seed=1)
        variants = [
            MonteCarloConfig(trials=200, seed=1),
            MonteCarloConfig(trials=100, seed=2),
            MonteCarloConfig(trials=100, seed=1, method="arrival"),
            MonteCarloConfig(trials=100, seed=1, start_phase="random"),
            MonteCarloConfig(trials=100, seed=1, chunks=4),
            MonteCarloConfig(trials=100, seed=1, max_arrival_rounds=9),
        ]
        tokens = {mc_token(v) for v in variants}
        assert mc_token(base) not in tokens
        assert len(tokens) == len(variants)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path / "store")
        cache.put("some/key", {"mttf_seconds": 123.5})
        assert cache.get("some/key") == {"mttf_seconds": 123.5}
        assert len(cache) == 1
        assert cache.hits == 1 and cache.writes == 1

    def test_missing_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", {"v": 1})
        [entry] = [
            p for p in cache.directory.iterdir()
            if p.suffix == ".json"
        ]
        entry.write_text("{ not json", encoding="utf-8")
        assert cache.get("k") is None

    def test_entry_records_key_for_debugging(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("component/abc", {"mttf_seconds": 1.0})
        [entry] = [
            p for p in cache.directory.iterdir()
            if p.suffix == ".json"
        ]
        stored = json.loads(entry.read_text(encoding="utf-8"))
        assert stored["key"] == "component/abc"

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.clear()
        assert len(cache) == 0


class TestComponentCacheDiskBacking:
    def test_component_value_survives_process_restart(
        self, tmp_path, day_profile
    ):
        comp = Component("n", 1e-6, day_profile)
        cold = ComponentCache(disk=DiskCache(tmp_path))
        value = cold.get_or_compute(
            "monte_carlo", comp, None, lambda: 42.0
        )
        assert value == 42.0 and cold.misses == 1
        # A fresh cache object over the same directory: disk hit, the
        # compute callback must never run.
        warm = ComponentCache(disk=DiskCache(tmp_path))
        reloaded = warm.get_or_compute(
            "monte_carlo", comp, None,
            lambda: pytest.fail("recomputed despite warm disk cache"),
        )
        assert reloaded == 42.0
        assert warm.disk_hits == 1 and warm.misses == 0

    def test_profile_change_invalidates(self, tmp_path, day_profile):
        cache = ComponentCache(disk=DiskCache(tmp_path))
        original = Component("n", 1e-6, day_profile)
        cache.get_or_compute("monte_carlo", original, None, lambda: 1.0)
        # Same name and rate, different masking content: new fingerprint,
        # so the stale entry must not be served.
        edited = Component(
            "n",
            1e-6,
            busy_idle_profile(0.25 * SECONDS_PER_DAY, SECONDS_PER_DAY),
        )
        value = cache.get_or_compute(
            "monte_carlo", edited, None, lambda: 2.0
        )
        assert value == 2.0
        assert cache.misses == 2

    def test_mc_config_change_invalidates(self, tmp_path, day_profile):
        cache = ComponentCache(disk=DiskCache(tmp_path))
        comp = Component("n", 1e-6, day_profile)
        a = MonteCarloConfig(trials=100, seed=1)
        b = MonteCarloConfig(trials=100, seed=2)
        cache.get_or_compute("monte_carlo", comp, a, lambda: 1.0)
        assert (
            cache.get_or_compute("monte_carlo", comp, b, lambda: 2.0)
            == 2.0
        )

    def test_kind_disambiguates(self, tmp_path, day_profile):
        cache = ComponentCache(disk=DiskCache(tmp_path))
        comp = Component("n", 1e-6, day_profile)
        cache.get_or_compute("exact", comp, None, lambda: 1.0)
        assert (
            cache.get_or_compute("monte_carlo", comp, None, lambda: 2.0)
            == 2.0
        )


class TestWarmEngineRerun:
    def test_warm_rerun_performs_zero_estimations(
        self, tmp_path, day_profile
    ):
        rate = 2.0 / SECONDS_PER_DAY
        space = [
            (
                f"C={c}",
                SystemModel(
                    [Component("n", rate, day_profile, multiplicity=c)]
                ),
            )
            for c in (2, 8, 100)
        ]
        mc = MonteCarloConfig(trials=2_000, seed=3)
        cold_cache = ComponentCache(disk=DiskCache(tmp_path))
        cold = evaluate_design_space(
            space,
            methods=["sofr_only", "first_principles"],
            mc_config=mc,
            cache=cold_cache,
        )
        assert cold_cache.estimate_misses > 0
        # A brand-new in-memory cache over the same directory — as a new
        # CLI invocation would build — must serve everything from disk.
        warm_cache = ComponentCache(disk=DiskCache(tmp_path))
        warm = evaluate_design_space(
            space,
            methods=["sofr_only", "first_principles"],
            mc_config=mc,
            cache=warm_cache,
        )
        assert warm == cold
        assert warm_cache.misses == 0
        assert warm_cache.estimate_misses == 0
        assert "misses=0" in warm_cache.stats_line()

    def test_trial_change_invalidates_estimates(
        self, tmp_path, day_profile
    ):
        space = [
            ("s", SystemModel([Component("n", 1e-5, day_profile)]))
        ]
        cache_a = ComponentCache(disk=DiskCache(tmp_path))
        evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=MonteCarloConfig(trials=1_000, seed=1),
            cache=cache_a,
        )
        cache_b = ComponentCache(disk=DiskCache(tmp_path))
        evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=MonteCarloConfig(trials=2_000, seed=1),
            cache=cache_b,
        )
        # The MC reference must be recomputed; the deterministic closed
        # form (keyed mc-independently) is served from disk.
        assert cache_b.estimate_misses == 1
        assert cache_b.disk_hits == 1
