"""Tests for repro.reliability.distributions."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.errors import ConfigurationError
from repro.reliability import Erlang, Exponential, Geometric, HalfNormalSquare


class TestExponential:
    def test_mean_and_variance(self):
        d = Exponential(0.5)
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(4.0)

    def test_pdf_integrates_to_one(self):
        d = Exponential(1.7)
        value, _ = integrate.quad(lambda t: float(d.pdf(t)), 0, np.inf)
        assert value == pytest.approx(1.0, rel=1e-8)

    def test_cdf_survival_complementary(self):
        d = Exponential(3.0)
        t = np.linspace(0, 5, 11)
        np.testing.assert_allclose(d.cdf(t) + d.survival(t), 1.0)

    def test_quantile_inverts_cdf(self):
        d = Exponential(0.2)
        p = np.array([0.1, 0.5, 0.9])
        np.testing.assert_allclose(d.cdf(d.quantile(p)), p)

    def test_sample_mean_converges(self, rng):
        d = Exponential(4.0)
        samples = d.sample(200_000, rng)
        assert samples.mean() == pytest.approx(0.25, rel=0.02)

    def test_memoryless_residual(self):
        d = Exponential(2.0)
        assert d.memoryless_residual(10.0) == d

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)

    def test_negative_time_has_zero_density(self):
        d = Exponential(1.0)
        assert float(d.pdf(-1.0)) == 0.0
        assert float(d.cdf(-1.0)) == 0.0
        assert float(d.survival(-1.0)) == 1.0

    def test_quantile_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            Exponential(1.0).quantile(1.0)


class TestErlang:
    def test_erlang_1_is_exponential(self):
        e1 = Erlang(1, 2.0)
        exp = Exponential(2.0)
        t = np.linspace(0.01, 4, 20)
        np.testing.assert_allclose(e1.pdf(t), exp.pdf(t), rtol=1e-12)

    def test_mean_is_k_over_lambda(self):
        assert Erlang(5, 2.0).mean == pytest.approx(2.5)

    def test_pdf_integrates_to_one(self):
        d = Erlang(4, 1.3)
        value, _ = integrate.quad(lambda t: float(d.pdf(t)), 0, np.inf)
        assert value == pytest.approx(1.0, rel=1e-8)

    def test_sum_of_exponentials_matches(self, rng):
        # Erlang(3, lam) == sum of three Exponential(lam) draws.
        lam = 1.5
        sums = rng.exponential(1 / lam, size=(100_000, 3)).sum(axis=1)
        erl = Erlang(3, lam)
        assert sums.mean() == pytest.approx(erl.mean, rel=0.02)
        assert sums.var() == pytest.approx(erl.variance, rel=0.05)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            Erlang(0, 1.0)

    def test_scalar_pdf_zero_at_origin_for_k_ge_2(self):
        assert float(Erlang(2, 1.0).pdf(0.0)) == 0.0


class TestGeometric:
    def test_mean_is_one_over_p(self):
        # E[K] = 1/AVF: the Section 3.1.1 identity.
        assert Geometric(0.25).mean == pytest.approx(4.0)

    def test_pmf_sums_to_one(self):
        d = Geometric(0.3)
        k = np.arange(1, 200)
        assert d.pmf(k).sum() == pytest.approx(1.0, rel=1e-10)

    def test_pmf_zero_below_one(self):
        assert float(Geometric(0.5).pmf(0)) == 0.0

    def test_sample_mean(self, rng):
        d = Geometric(0.1)
        assert d.sample(100_000, rng).mean() == pytest.approx(10.0, rel=0.02)

    def test_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            Geometric(0.0)
        with pytest.raises(ConfigurationError):
            Geometric(1.5)


class TestHalfNormalSquare:
    def test_mean_is_one_over_sqrt_pi(self):
        # Section 3.2.2: E[X] = 1/sqrt(pi).
        assert HalfNormalSquare().mean == pytest.approx(1 / math.sqrt(math.pi))

    def test_pdf_integrates_to_one(self):
        d = HalfNormalSquare()
        value, _ = integrate.quad(lambda t: float(d.pdf(t)), 0, np.inf)
        assert value == pytest.approx(1.0, rel=1e-9)

    def test_mean_from_pdf(self):
        d = HalfNormalSquare()
        value, _ = integrate.quad(lambda t: t * float(d.pdf(t)), 0, np.inf)
        assert value == pytest.approx(d.mean, rel=1e-9)

    def test_survival_is_erfc(self):
        from scipy.special import erfc

        d = HalfNormalSquare()
        x = np.linspace(0, 3, 7)
        np.testing.assert_allclose(d.survival(x), erfc(x))

    def test_cdf_survival_complementary(self):
        d = HalfNormalSquare()
        x = np.linspace(0, 2, 9)
        np.testing.assert_allclose(d.cdf(x) + d.survival(x), 1.0)

    def test_sampler_matches_mean(self, rng):
        d = HalfNormalSquare()
        samples = d.sample(200_000, rng)
        assert samples.mean() == pytest.approx(d.mean, rel=0.01)
