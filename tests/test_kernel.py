"""Compiled sampling kernels (PR 7): plans, backends, bit-identity.

The compiled-kernel layer promises *bit-identical* estimates: any
result computed through a :class:`~repro.core.kernel.SamplingPlan` —
with batched dispatch, plan hydration, any backend — must byte-match
the legacy object-graph sampler. These tests enforce that promise at
every level: compiled tables vs hazard objects, plan sampling vs the
legacy samplers (property-tested across profiles, methods, and
phases), the batch engine end to end (executors, worker counts,
shards, reallocation), the plan wire forms, and the worker hydration
protocol. Plus the PR-7 satellite invariants: memoized
``combined_intensity``, the vectorized survival integral's exact
agreement with the scalar closed forms, and the kernel field staying
out of cache tokens and job wire forms.
"""

import dataclasses
import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Component,
    MonteCarloConfig,
    StoppingRule,
    SystemModel,
    sample_component_ttf,
    sample_system_ttf,
)
from repro.core import kernel as kernel_mod
from repro.core.kernel import (
    CompiledNested,
    CompiledPiecewise,
    PLAN_MISS,
    PLAN_OK,
    SamplingPlan,
    available_kernels,
    clear_plan_cache,
    compile_intensity,
    get_backend,
    plan_for_component,
    plan_for_system,
    run_plan_chunks,
)
from repro.core.montecarlo import adaptive_chunk_configs
from repro.errors import ConfigurationError, EstimationError, ProfileError
from repro.masking import busy_idle_profile
from repro.methods import evaluate_design_space, merge_result_sets
from repro.methods.cache import mc_token
from repro.reliability.hazard import (
    NestedHazard,
    PiecewiseHazard,
    _segment_integral,
    _segment_weighted_integral,
)
from repro.service.wire import mc_config_from_dict, mc_config_to_dict
from repro.units import SECONDS_PER_DAY
from repro.workloads.longrun import (
    combined_workload,
    day_workload,
    week_workload,
)


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    """Plan hydration is process-global; isolate it per test."""
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def piecewise_system(day_profile):
    return SystemModel(
        [
            Component("cpu", 2.0 / SECONDS_PER_DAY, day_profile),
            Component(
                "cache", 1.0 / SECONDS_PER_DAY, day_profile,
                multiplicity=3,
            ),
        ]
    )


@pytest.fixture
def nested_system():
    workload = combined_workload(day_workload(0.5), week_workload(5.0))
    return SystemModel([Component("core", 1e-6, workload)])


@st.composite
def piecewise_hazards(draw, max_segments=5):
    n = draw(st.integers(min_value=1, max_value=max_segments))
    durations = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=n, max_size=n,
        )
    )
    rates = draw(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=1e-6, max_value=5.0),
            ),
            min_size=n, max_size=n,
        )
    )
    return PiecewiseHazard.from_segments(list(zip(durations, rates)))


@st.composite
def nested_hazards(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    segments = []
    for _ in range(n):
        duration = draw(st.floats(min_value=0.5, max_value=20.0))
        inner = draw(piecewise_hazards(max_segments=3))
        segments.append((duration, inner))
    return NestedHazard(segments)


# ---------------------------------------------------------------------------
# Compiled intensities: same tables, same bits, same refusals.
# ---------------------------------------------------------------------------


class TestCompiledIntensity:
    def grid(self, period):
        # Interior points, exact breakpoints, and both endpoints.
        return np.concatenate(
            [
                np.linspace(0.0, period, 41),
                np.asarray([0.0, period]),
            ]
        )

    @given(piecewise_hazards())
    @settings(max_examples=40, deadline=None)
    def test_piecewise_cumulative_and_invert_bits(self, hazard):
        compiled = compile_intensity(hazard)
        taus = self.grid(hazard.period)
        np.testing.assert_array_equal(
            compiled.cumulative(taus), hazard.cumulative(taus)
        )
        mass = compiled.mass
        if mass > 0:
            us = np.concatenate(
                [
                    np.linspace(mass * 1e-6, mass, 37),
                    # The hazard's own cumulative values: exact
                    # segment-boundary inversions.
                    hazard.cumulative(taus)[
                        hazard.cumulative(taus) > 0
                    ],
                ]
            )
            np.testing.assert_array_equal(
                compiled.invert(us), hazard.invert(us)
            )

    @given(nested_hazards())
    @settings(max_examples=30, deadline=None)
    def test_nested_cumulative_and_invert_bits(self, hazard):
        compiled = compile_intensity(hazard)
        taus = self.grid(hazard.period)
        np.testing.assert_array_equal(
            compiled.cumulative(taus), hazard.cumulative(taus)
        )
        if compiled.mass > 0:
            us = np.linspace(compiled.mass * 1e-6, compiled.mass, 37)
            np.testing.assert_array_equal(
                compiled.invert(us), hazard.invert(us)
            )

    def test_extended_evaluation_bits(self, day_profile):
        hazard = day_profile.to_hazard(2.0 / SECONDS_PER_DAY)
        compiled = compile_intensity(hazard)
        t = np.linspace(0.0, 5.5 * hazard.period, 101)[1:]
        np.testing.assert_array_equal(
            kernel_mod._cumulative_extended(compiled, t),
            hazard.cumulative_extended(t),
        )
        u = np.linspace(1e-9, 4.0 * compiled.mass, 101)
        np.testing.assert_array_equal(
            kernel_mod._invert_extended(compiled, u),
            hazard.invert_extended(u),
        )

    def test_validation_matches_hazard(self, day_profile):
        hazard = day_profile.to_hazard(1e-5)
        compiled = compile_intensity(hazard)
        with pytest.raises(ProfileError, match="tau"):
            compiled.cumulative(np.asarray([-1.0]))
        with pytest.raises(ProfileError, match="tau"):
            compiled.cumulative(np.asarray([hazard.period * 2]))
        with pytest.raises(ProfileError, match="u outside"):
            compiled.invert(np.asarray([0.0]))
        with pytest.raises(ProfileError, match="u outside"):
            compiled.invert(np.asarray([compiled.mass * 2]))

    def test_rejects_uncompilable_intensity(self):
        with pytest.raises(ConfigurationError, match="cannot compile"):
            compile_intensity("not an intensity")

    def test_rejects_inconsistent_tables(self):
        with pytest.raises(ConfigurationError, match="inconsistent"):
            CompiledPiecewise(
                np.asarray([0.0, 1.0]),
                np.asarray([1.0, 2.0]),
                np.asarray([0.0, 1.0]),
            )


# ---------------------------------------------------------------------------
# Plan sampling vs the legacy samplers.
# ---------------------------------------------------------------------------


def _config(**overrides):
    base = dict(trials=400, seed=9, chunks=1)
    base.update(overrides)
    return MonteCarloConfig(**base)


class TestPlanBitIdentity:
    @pytest.mark.parametrize("method", ["inverse", "arrival"])
    @pytest.mark.parametrize("start_phase", ["zero", "random"])
    def test_system_samples_match_legacy(
        self, piecewise_system, nested_system, method, start_phase
    ):
        for system in (piecewise_system, nested_system):
            config = _config(
                method=method, start_phase=start_phase, kernel="legacy"
            )
            legacy = sample_system_ttf(system, config)
            plan = plan_for_system(system)
            via_plan = plan.sample_ttf(
                dataclasses.replace(config, kernel="numpy")
            )
            np.testing.assert_array_equal(via_plan, legacy)

    @pytest.mark.parametrize("method", ["inverse", "arrival"])
    def test_component_samples_match_legacy(self, day_profile, method):
        component = Component("unit", 3.0 / SECONDS_PER_DAY, day_profile)
        config = _config(method=method, kernel="legacy")
        legacy = sample_component_ttf(component, config)
        plan = plan_for_component(component)
        via_plan = plan.sample_ttf(
            dataclasses.replace(config, kernel="numpy")
        )
        np.testing.assert_array_equal(via_plan, legacy)

    def test_config_routing_is_transparent(self, piecewise_system):
        """kernel="numpy" on the config routes through plans by itself."""
        legacy = sample_system_ttf(
            piecewise_system, _config(kernel="legacy")
        )
        routed = sample_system_ttf(
            piecewise_system, _config(kernel="numpy")
        )
        np.testing.assert_array_equal(routed, legacy)

    def test_masked_system_is_all_infinite(self, piecewise_system):
        masked = SystemModel(
            [
                Component(
                    "off", 0.0, busy_idle_profile(1.0, 2.0, 0.0)
                )
            ]
        )
        samples = plan_for_system(masked).sample_ttf(_config())
        assert np.all(np.isinf(samples))

    @given(piecewise_hazards())
    @settings(max_examples=25, deadline=None)
    def test_property_samples_match_legacy(self, hazard):
        # Rebuild a profile-backed component carrying this hazard shape:
        # rate 1 makes the hazard the vulnerability profile itself.
        from repro.masking import PiecewiseProfile

        durations = np.diff(hazard.breakpoints)
        values = np.clip(hazard.rates, 0.0, 1.0)
        profile = PiecewiseProfile.from_segments(
            list(zip(durations.tolist(), values.tolist()))
        )
        system = SystemModel([Component("c", 0.8, profile)])
        config = _config(trials=128, kernel="legacy")
        legacy = sample_system_ttf(system, config)
        clear_plan_cache()
        via_plan = plan_for_system(system).sample_ttf(
            dataclasses.replace(config, kernel="numpy")
        )
        np.testing.assert_array_equal(via_plan, legacy)


# ---------------------------------------------------------------------------
# Engine-level equality: every scheduler configuration, same bytes.
# ---------------------------------------------------------------------------


def _space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (1, 4, 16)
    ]


def _result_bytes(space, kernel, **kwargs):
    mc = kwargs.pop(
        "mc",
        MonteCarloConfig(trials=2_000, seed=3, chunks=4, kernel=kernel),
    )
    if mc.kernel != kernel:
        mc = dataclasses.replace(mc, kernel=kernel)
    result = evaluate_design_space(
        space,
        methods=["avf_sofr"],
        reference="monte_carlo",
        mc_config=mc,
        skip_unsupported=True,
        **kwargs,
    )
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEngineBitIdentity:
    def test_kernel_matches_legacy_across_schedulers(self, day_profile):
        space = _space(day_profile)
        baseline = _result_bytes(space, "legacy", workers=1)
        for kwargs in (
            dict(workers=1, executor="thread"),
            dict(workers=2, executor="thread"),
            dict(workers=2, executor="process"),
            dict(
                workers=2, executor="process",
                pipeline_methods=True, reallocate_budget=True,
            ),
        ):
            assert _result_bytes(space, "numpy", **kwargs) == baseline

    def test_adaptive_kernel_matches_legacy(self, day_profile):
        space = _space(day_profile)
        mc = MonteCarloConfig(
            trials=4_000, seed=3, chunks=8,
            stopping=StoppingRule(
                target_rel_stderr=0.08, min_trials=500
            ),
        )
        baseline = _result_bytes(space, "legacy", workers=1, mc=mc)
        assert _result_bytes(space, "numpy", workers=2, mc=mc) == baseline
        assert (
            _result_bytes(
                space, "numpy", workers=2, executor="process", mc=mc
            )
            == baseline
        )

    def test_realloc_kernel_matches_legacy(self, day_profile):
        space = _space(day_profile)
        mc = MonteCarloConfig(
            trials=4_000, seed=3, chunks=8,
            stopping=StoppingRule(
                target_rel_stderr=0.08, min_trials=500
            ),
        )
        shared = dict(
            mc=mc, pipeline_methods=True, reallocate_budget=True
        )
        baseline = _result_bytes(space, "legacy", workers=1, **shared)
        assert (
            _result_bytes(space, "numpy", workers=2, **shared) == baseline
        )

    def test_shard_merge_matches_unsharded_legacy(self, day_profile):
        space = _space(day_profile)
        unsharded = _result_bytes(space, "legacy", workers=1)
        shards = [
            evaluate_design_space(
                space,
                methods=["avf_sofr"],
                reference="monte_carlo",
                mc_config=MonteCarloConfig(
                    trials=2_000, seed=3, chunks=4, kernel="numpy"
                ),
                skip_unsupported=True,
                workers=2,
                executor="process",
                shard=(i, 2),
            )
            for i in (0, 1)
        ]
        merged = merge_result_sets(shards)
        assert json.dumps(merged.to_dict(), sort_keys=True) == unsharded


# ---------------------------------------------------------------------------
# Plan wire forms and pickling.
# ---------------------------------------------------------------------------


class TestPlanWire:
    def test_round_trip_samples_identically(self, nested_system):
        plan = plan_for_system(nested_system)
        clone = SamplingPlan.from_dict(plan.to_dict())
        config = _config(trials=256)
        np.testing.assert_array_equal(
            clone.sample_ttf(config), plan.sample_ttf(config)
        )
        assert clone.cache_key == plan.cache_key

    def test_double_round_trip_is_dict_stable(self, piecewise_system):
        plan = plan_for_system(piecewise_system)
        once = plan.to_dict()
        twice = SamplingPlan.from_dict(once).to_dict()
        assert once == twice

    def test_wire_json_safe(self, nested_system):
        plan = plan_for_system(nested_system)
        assert (
            SamplingPlan.from_dict(
                json.loads(json.dumps(plan.to_dict()))
            ).to_dict()
            == plan.to_dict()
        )

    def test_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError, match="repro.plan/v1"):
            SamplingPlan.from_dict({"schema": "bogus"})

    def test_pickle_drops_model_cache(self, piecewise_system):
        plan = plan_for_system(piecewise_system)
        plan.model()  # populate the per-process cache
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._model is None
        config = _config(method="arrival")
        np.testing.assert_array_equal(
            clone.sample_ttf(config), plan.sample_ttf(config)
        )

    def test_arrival_model_rebuild_preserves_fingerprint(
        self, piecewise_system
    ):
        plan = plan_for_system(piecewise_system)
        rebuilt = SamplingPlan.from_dict(plan.to_dict()).model()
        assert (
            rebuilt.content_fingerprint
            == piecewise_system.content_fingerprint
        )


# ---------------------------------------------------------------------------
# Hydration cache and the batched-dispatch miss protocol.
# ---------------------------------------------------------------------------


class TestHydration:
    def test_plan_for_system_memoizes(self, piecewise_system):
        assert plan_for_system(piecewise_system) is plan_for_system(
            piecewise_system
        )

    def test_identical_content_shares_a_plan(self, day_profile):
        a = SystemModel(
            [Component("x", 1e-4, day_profile, multiplicity=2)]
        )
        b = SystemModel(
            [Component("x", 1e-4, day_profile, multiplicity=2)]
        )
        assert plan_for_system(a) is plan_for_system(b)

    def test_run_plan_chunks_miss_then_hydrate(self, piecewise_system):
        plan = plan_for_system(piecewise_system)
        config = _config(trials=512, chunks=2)
        jobs = list(enumerate(adaptive_chunk_configs(config)))
        clear_plan_cache()
        status, payload = run_plan_chunks(plan.cache_key, None, jobs)
        assert status == PLAN_MISS
        assert payload == plan.cache_key
        # Resubmission with the plan attached hydrates the cache...
        status, pairs = run_plan_chunks(plan.cache_key, plan, jobs)
        assert status == PLAN_OK
        assert [index for index, _ in pairs] == [0, 1]
        # ...so the next key-only call succeeds.
        status, again = run_plan_chunks(plan.cache_key, None, jobs)
        assert status == PLAN_OK
        assert again == pairs

    def test_batch_moments_match_direct_chunks(self, nested_system):
        plan = plan_for_system(nested_system)
        config = _config(trials=600, chunks=3)
        jobs = list(enumerate(adaptive_chunk_configs(config)))
        _status, pairs = run_plan_chunks(plan.cache_key, plan, jobs)
        for (index, moments), (_, chunk_config) in zip(pairs, jobs):
            expected = plan.chunk_moments(chunk_config)
            assert moments == expected, index


# ---------------------------------------------------------------------------
# Backend registry and configuration validation.
# ---------------------------------------------------------------------------


class TestBackends:
    def test_available_kernels_always_has_numpy_and_legacy(self):
        names = available_kernels()
        assert "numpy" in names
        assert "legacy" in names

    def test_unknown_kernel_is_loud(self):
        with pytest.raises(EstimationError, match="unknown kernel"):
            get_backend("cuda")

    def test_legacy_is_not_an_executable_backend(self):
        with pytest.raises(EstimationError, match="unknown kernel"):
            get_backend("legacy")

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(EstimationError, match="kernel"):
            MonteCarloConfig(trials=10, kernel="fortran")

    def test_numba_feature_detection(self, piecewise_system):
        """The numba backend JITs when present, refuses when absent."""
        backend = kernel_mod._BACKENDS["numba"]
        config = _config(kernel="numba")
        if not backend.available:
            with pytest.raises(EstimationError, match="numba"):
                sample_system_ttf(piecewise_system, config)
            assert "numba" not in available_kernels()
            return
        legacy = sample_system_ttf(
            piecewise_system, dataclasses.replace(config, kernel="legacy")
        )
        np.testing.assert_array_equal(
            sample_system_ttf(piecewise_system, config), legacy
        )


# ---------------------------------------------------------------------------
# The kernel choice never leaks into cache keys or wire forms.
# ---------------------------------------------------------------------------


class TestKernelTransparency:
    def test_mc_token_ignores_kernel(self):
        reference = MonteCarloConfig(trials=100, seed=1, kernel="numpy")
        for name in ("numba", "legacy"):
            assert mc_token(
                dataclasses.replace(reference, kernel=name)
            ) == mc_token(reference)

    def test_wire_form_has_no_kernel_field(self):
        config = MonteCarloConfig(trials=100, seed=1, kernel="legacy")
        payload = mc_config_to_dict(config)
        assert "kernel" not in payload
        assert mc_config_from_dict(payload).kernel == "numpy"


# ---------------------------------------------------------------------------
# Satellites: memoized combined_intensity, vectorized survival integral.
# ---------------------------------------------------------------------------


class TestCombinedIntensityMemo:
    def test_same_object_across_calls(self, piecewise_system):
        assert (
            piecewise_system.combined_intensity()
            is piecewise_system.combined_intensity()
        )

    def test_memo_preserves_values(self, piecewise_system):
        first = piecewise_system.combined_intensity()
        rebuilt = piecewise_system._build_combined_intensity()
        taus = np.linspace(0.0, first.period, 57)
        np.testing.assert_array_equal(
            first.cumulative(taus), rebuilt.cumulative(taus)
        )


def _scalar_survival_integral(hazard, x, weighted):
    """The pre-vectorization per-segment loop, kept as the reference."""
    if x <= 0:
        return 0.0
    x = min(x, hazard.period)
    bp, rates, cum = hazard._bp, hazard._rates, hazard._cum
    m = min(int(np.searchsorted(bp, x, side="left")), rates.size)
    total = 0.0
    for i in range(m):
        t0 = bp[i]
        t1 = min(bp[i + 1], x)
        if t1 <= t0:
            continue
        segment = (
            _segment_weighted_integral
            if weighted
            else _segment_integral
        )
        total += segment(t0, t1, float(cum[i]), float(rates[i]))
    return total


class TestSurvivalIntegralVectorization:
    @given(piecewise_hazards(max_segments=8), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_bits_match_scalar_loop(self, hazard, fraction):
        x = hazard.period * fraction
        for weighted in (False, True):
            assert hazard._survival_integral_impl(
                x, weighted
            ) == _scalar_survival_integral(hazard, x, weighted)

    def test_series_branch_bits(self):
        # Rates small enough that r*dt < 1e-8 exercises the series
        # expansion on every segment.
        hazard = PiecewiseHazard.from_segments(
            [(1.0, 1e-12), (2.0, 0.0), (0.5, 9e-9)]
        )
        for frac in (0.3, 0.9999, 1.0):
            x = hazard.period * frac
            for weighted in (False, True):
                assert hazard._survival_integral_impl(
                    x, weighted
                ) == _scalar_survival_integral(hazard, x, weighted)
