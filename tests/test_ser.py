"""Tests for the raw soft-error-rate models (repro.ser)."""

import pytest

from repro.errors import ConfigurationError
from repro.ser import (
    ComponentErrorModel,
    PAPER_UNIT_RATES_PER_YEAR,
    component_rate_per_second,
    paper_unit_rate_per_second,
)
from repro.ser.environment import (
    ENVIRONMENTS,
    TABLE2_COMPONENT_COUNTS,
    TABLE2_ELEMENT_COUNTS,
    TABLE2_SCALING_FACTORS,
    environment,
)
from repro.ser.rates import cache_bits
from repro.units import SECONDS_PER_YEAR


class TestPaperUnitRates:
    def test_all_four_components_present(self):
        assert set(PAPER_UNIT_RATES_PER_YEAR) == {
            "int_unit",
            "fp_unit",
            "decode_unit",
            "register_file",
        }

    def test_register_file_dominates(self):
        # The 256-entry register file is the most error-prone component
        # (1e-4 vs ~1e-6 errors/year).
        rf = PAPER_UNIT_RATES_PER_YEAR["register_file"]
        assert all(
            rf > rate
            for name, rate in PAPER_UNIT_RATES_PER_YEAR.items()
            if name != "register_file"
        )

    def test_per_second_conversion(self):
        per_sec = paper_unit_rate_per_second("int_unit")
        assert per_sec * SECONDS_PER_YEAR == pytest.approx(2.3e-6)

    def test_unknown_component_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_unit_rate_per_second("alu")


class TestNTimesS:
    def test_rate_formula(self):
        # N=1e9 bits at S=1: 10 errors/year (the paper's big-cache example).
        rate = component_rate_per_second(1e9, 1.0)
        assert rate * SECONDS_PER_YEAR == pytest.approx(10.0)

    def test_scaling_multiplies(self):
        assert component_rate_per_second(1e6, 5.0) == pytest.approx(
            5 * component_rate_per_second(1e6, 1.0)
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            component_rate_per_second(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            component_rate_per_second(1e6, 0.0)
        with pytest.raises(ConfigurationError):
            component_rate_per_second(1e6, 1.0, baseline_per_year=0.0)


class TestComponentErrorModel:
    def test_n_times_s(self):
        model = ComponentErrorModel("cache", 1e8, scaling=100.0)
        assert model.n_times_s == pytest.approx(1e10)

    def test_rate_per_year(self):
        model = ComponentErrorModel("cache", 1e8, scaling=2.0)
        assert model.rate_per_year == pytest.approx(2.0)

    def test_validation_on_construction(self):
        with pytest.raises(ConfigurationError):
            ComponentErrorModel("bad", -1.0)

    def test_str_mentions_name(self):
        assert "cache" in str(ComponentErrorModel("cache", 1e6))


class TestCacheBits:
    def test_100mb_cache(self):
        # Figure 3's 100MB cache: 8.389e8 bits -> ~8.4 errors/year,
        # the paper's "10 errors/year" after rounding.
        bits = cache_bits(100.0)
        assert bits == pytest.approx(8.389e8, rel=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            cache_bits(0.0)


class TestEnvironments:
    def test_table2_factors_covered(self):
        scalings = sorted(env.scaling for env in ENVIRONMENTS.values())
        assert scalings == sorted(TABLE2_SCALING_FACTORS)

    def test_lookup(self):
        assert environment("space").scaling == pytest.approx(2000.0)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            environment("underwater")

    def test_table2_dimensions(self):
        assert len(TABLE2_ELEMENT_COUNTS) == 5
        assert len(TABLE2_COMPONENT_COUNTS) == 5
        assert max(TABLE2_COMPONENT_COUNTS) == 500000
