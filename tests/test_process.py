"""Tests for FailureProcess (exact MTTF, moments, sampling)."""

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.reliability import FailureProcess
from repro.reliability.hazard import (
    NestedHazard,
    PiecewiseHazard,
    constant_hazard,
)


class TestExactMttf:
    def test_constant_hazard_is_exponential(self):
        lam = 0.37
        p = FailureProcess(constant_hazard(lam, period=5.0))
        assert p.mttf() == pytest.approx(1.0 / lam, rel=1e-12)
        assert p.second_moment() == pytest.approx(2.0 / lam**2, rel=1e-10)
        assert p.coefficient_of_variation() == pytest.approx(1.0, abs=1e-8)

    def test_period_choice_does_not_matter_for_constant(self):
        lam = 0.11
        m1 = FailureProcess(constant_hazard(lam, period=1.0)).mttf()
        m2 = FailureProcess(constant_hazard(lam, period=100.0)).mttf()
        assert m1 == pytest.approx(m2, rel=1e-12)

    def test_busy_idle_matches_paper_closed_form(self):
        # E(X) = 1/λ + (L-A) e^{-λA}/(1-e^{-λA})  (Section 3.1.2).
        lam, busy, period = 0.9, 2.0, 7.0
        h = PiecewiseHazard([0.0, busy, period], [lam, 0.0])
        expected = 1.0 / lam + (period - busy) * math.exp(-lam * busy) / (
            -math.expm1(-lam * busy)
        )
        assert FailureProcess(h).mttf() == pytest.approx(expected, rel=1e-12)

    def test_zero_mass_never_fails(self):
        p = FailureProcess(constant_hazard(0.0, period=1.0))
        assert math.isinf(p.mttf())
        assert math.isinf(p.second_moment())

    def test_avf_limit_for_small_hazard(self):
        # λL → 0: MTTF → 1/(λ·AVF)  (Section 3.1.1).
        lam, busy, period = 1e-9, 3.0, 10.0
        h = PiecewiseHazard([0.0, busy, period], [lam, 0.0])
        avf = busy / period
        assert FailureProcess(h).mttf() == pytest.approx(
            1.0 / (lam * avf), rel=1e-6
        )

    def test_mttf_monotone_in_rate(self):
        period = 4.0
        mttfs = [
            FailureProcess(
                PiecewiseHazard([0.0, 1.0, period], [lam, 0.0])
            ).mttf()
            for lam in (0.1, 0.5, 1.0, 5.0)
        ]
        assert all(a > b for a, b in zip(mttfs, mttfs[1:]))


class TestMoments:
    def test_cov_above_one_for_bursty_profile(self):
        # Long idle phases make the TTF non-exponential; with a large
        # hazard mass per busy phase the failure time concentrates near
        # phase starts, inflating variability relative to the mean.
        h = PiecewiseHazard([0.0, 1.0, 100.0], [5.0, 0.0])
        cov = FailureProcess(h).coefficient_of_variation()
        assert cov > 1.05

    def test_cov_near_one_for_small_mass(self):
        h = PiecewiseHazard([0.0, 1.0, 2.0], [1e-6, 0.0])
        cov = FailureProcess(h).coefficient_of_variation()
        assert cov == pytest.approx(1.0, abs=1e-3)

    def test_variance_matches_sampling(self, rng):
        h = PiecewiseHazard([0.0, 2.0, 5.0], [0.8, 0.1])
        p = FailureProcess(h)
        samples = p.sample(400_000, rng)
        assert samples.var() == pytest.approx(p.variance(), rel=0.02)

    def test_cov_undefined_when_never_failing(self):
        p = FailureProcess(constant_hazard(0.0))
        with pytest.raises(EstimationError):
            p.coefficient_of_variation()


class TestSurvivalAndQuantiles:
    def test_survival_at_zero_is_one(self):
        p = FailureProcess(constant_hazard(2.0))
        assert float(p.survival(0.0)) == 1.0

    def test_survival_exponential(self):
        lam = 1.3
        p = FailureProcess(constant_hazard(lam, period=2.0))
        t = np.array([0.5, 1.0, 7.9])
        np.testing.assert_allclose(p.survival(t), np.exp(-lam * t))

    def test_quantile_inverts_survival(self):
        h = PiecewiseHazard([0.0, 1.0, 3.0], [2.0, 0.2])
        p = FailureProcess(h)
        probs = np.array([0.1, 0.5, 0.9, 0.99])
        t = p.quantile(probs)
        np.testing.assert_allclose(1.0 - p.survival(t), probs, atol=1e-10)

    def test_quantile_bounds_checked(self):
        p = FailureProcess(constant_hazard(1.0))
        with pytest.raises(EstimationError):
            p.quantile(np.array([0.0]))

    def test_never_failing_quantile_inf(self):
        p = FailureProcess(constant_hazard(0.0))
        assert np.isinf(p.quantile(np.array([0.5]))).all()


class TestSampling:
    def test_sample_mean_converges_to_exact(self, rng):
        h = PiecewiseHazard([0.0, 2.0, 10.0], [0.7, 0.0])
        p = FailureProcess(h)
        samples = p.sample(500_000, rng)
        assert samples.mean() == pytest.approx(p.mttf(), rel=0.01)

    def test_samples_avoid_masked_intervals(self, rng):
        # All failures must land inside the vulnerable interval [0, 1).
        h = PiecewiseHazard([0.0, 1.0, 10.0], [1.0, 0.0])
        samples = FailureProcess(h).sample(10_000, rng)
        offsets = np.mod(samples, 10.0)
        assert np.all(offsets <= 1.0 + 1e-9)

    def test_nested_sampling_matches_exact(self, rng):
        inner = PiecewiseHazard.from_segments([(0.5, 1.2), (0.5, 0.0)])
        nested = NestedHazard([(4.0, inner), (4.0, 0.05)])
        p = FailureProcess(nested)
        samples = p.sample(300_000, rng)
        assert samples.mean() == pytest.approx(p.mttf(), rel=0.02)

    def test_sample_size_validated(self, rng):
        with pytest.raises(EstimationError):
            FailureProcess(constant_hazard(1.0)).sample(0, rng)

    def test_zero_mass_samples_are_inf(self, rng):
        p = FailureProcess(constant_hazard(0.0))
        assert np.isinf(p.sample(10, rng)).all()
