"""repro-lint: rule fixtures, CLI contract, wire form, self-audit.

Each rule family gets three fixtures — a seeded violation the rule must
catch, the same violation under an audited ``# repro: allow[...]``, and
clean code it must not flag. The CLI exit-code contract (0 clean /
1 findings / 2 usage) and the ``repro.lint-report/v1`` JSON round trip
are pinned here too, and the suite closes with the gate the CI job
enforces: the real tree lints clean with every suppression reasoned.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    Finding,
    available_rules,
    run_lint,
    select_rules,
)
from repro.lint.cli import main
from repro.lint.engine import REPORT_SCHEMA
from repro.lint.model import FINDING_SCHEMA, classify_scope

ROOT = Path(__file__).resolve().parent.parent


def write(root: Path, rel: str, code: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


def make_docs(
    root: Path, readme: str = "", design: str = "", scheduler: str = ""
) -> None:
    """Minimal documentation set so full runs pass R100."""
    write(root, "README.md", readme)
    write(root, "DESIGN.md", design)
    write(root, "docs/SCHEDULER.md", scheduler)


def lint(path, rules, root=None):
    return run_lint([path], rules=rules, root=root)


def rule_ids(report) -> list[str]:
    return [f.rule_id for f in report.findings]


class TestRegistryAndScope:
    def test_all_families_registered(self):
        families = {rule_id[:2] for rule_id in available_rules()}
        assert families == {"D1", "W1", "R1", "C1", "L1"}

    def test_family_selector_expands(self):
        assert [r.rule_id for r in select_rules(["D1"])] == [
            "D101", "D102", "D103", "D104", "D105",
        ]

    def test_unknown_selector_is_loud(self):
        with pytest.raises(ConfigurationError, match="Z9"):
            select_rules(["Z9"])

    def test_scope_classification(self):
        assert classify_scope("repro/core/montecarlo.py") == (True, False)
        assert classify_scope("repro/methods/worker.py") == (True, True)
        assert classify_scope("repro/service/http.py") == (True, True)
        assert classify_scope("repro/harness/runner.py") == (False, False)


class TestDeterminismRules:
    def test_d101_wall_clock_caught(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            import time

            def stamp():
                return time.time()
            """)
        report = lint(path, ["D101"])
        assert rule_ids(report) == ["D101"]
        assert report.findings[0].line == 4

    def test_d101_suppressed_with_reason(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            import time

            def stamp():
                return time.time()  # repro: allow[D101] display only
            """)
        report = lint(path, ["D101"])
        assert report.clean
        assert [f.rule_id for f in report.suppressed] == ["D101"]
        assert report.suppressed[0].reason == "display only"

    def test_d101_clean(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            def stamp(clock):
                return clock()
            """)
        assert lint(path, ["D101"]).clean

    def test_d102_entropy_caught(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            import os
            import random

            def salt():
                return os.urandom(8), random.random()
            """)
        assert rule_ids(lint(path, ["D102"])) == ["D102", "D102"]

    def test_d103_legacy_numpy_random_caught(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            import numpy as np

            def seed_it():
                np.random.seed(0)
                return np.random.RandomState(1)
            """)
        assert rule_ids(lint(path, ["D103"])) == ["D103", "D103"]

    def test_d103_unseeded_rng_caught_seeded_clean(self, tmp_path):
        bad = write(tmp_path, "repro/core/bad.py", """\
            from numpy.random import default_rng

            def rng():
                return default_rng()
            """)
        good = write(tmp_path, "repro/core/good.py", """\
            from numpy.random import SeedSequence, default_rng

            def rng(seed):
                return default_rng(SeedSequence(seed))
            """)
        assert rule_ids(lint(bad, ["D103"])) == ["D103"]
        assert lint(good, ["D103"]).clean

    def test_d104_id_keying_engine_only(self, tmp_path):
        engine = write(tmp_path, "repro/core/keys.py", """\
            def key(obj):
                return {id(obj): obj}
            """)
        harness = write(tmp_path, "repro/harness/keys.py", """\
            def key(obj):
                return {id(obj): obj}
            """)
        assert rule_ids(lint(engine, ["D104"])) == ["D104"]
        assert lint(harness, ["D104"]).clean

    def test_d105_set_iteration_caught_sorted_clean(self, tmp_path):
        bad = write(tmp_path, "repro/core/fold.py", """\
            def fold(items):
                total = 0.0
                for item in {1, 2, 3}:
                    total += item
                return total
            """)
        good = write(tmp_path, "repro/core/fold2.py", """\
            def fold(items):
                total = 0.0
                for item in sorted(set(items)):
                    total += item
                return total
            """)
        assert rule_ids(lint(bad, ["D105"])) == ["D105"]
        assert lint(good, ["D105"]).clean


class TestWireRules:
    def test_w101_unsealed_payload_caught(self, tmp_path):
        path = write(tmp_path, "repro/service/stream.py", """\
            def push(sock, data):
                sock.sendall(data)
            """)
        assert rule_ids(lint(path, ["W101"])) == ["W101"]

    def test_w101_sealed_helper_output_clean(self, tmp_path):
        path = write(tmp_path, "repro/service/stream.py", """\
            def sse_event(kind, data):
                return ("data: %s\\n\\n" % kind).encode()

            def push(writer, kind):
                frame = sse_event(kind, {})
                writer.write(frame)
            """)
        assert lint(path, ["W101"]).clean

    def test_w101_transitively_sealed_wrapper_clean(self, tmp_path):
        path = write(tmp_path, "repro/service/stream.py", """\
            def response_bytes(status, body):
                return body

            def render(job):
                return response_bytes(200, job)

            def push(writer, job):
                writer.write(render(job))
            """)
        assert lint(path, ["W101"]).clean

    def test_w102_inline_frame_caught_and_suppressible(self, tmp_path):
        bad = write(tmp_path, "repro/service/stream.py", """\
            def ping(writer):
                writer.write(b": keep-alive\\n\\n")
            """)
        allowed = write(tmp_path, "repro/service/stream2.py", """\
            def ping(writer):
                # repro: allow[W102] complete comment frame in one call
                writer.write(b": keep-alive\\n\\n")
            """)
        assert rule_ids(lint(bad, ["W102"])) == ["W102"]
        report = lint(allowed, ["W102"])
        assert report.clean
        assert [f.rule_id for f in report.suppressed] == ["W102"]

    def test_w103_partial_send_caught(self, tmp_path):
        path = write(tmp_path, "repro/methods/worker.py", """\
            def push(sock, frame):
                sock.send(frame)
            """)
        assert rule_ids(lint(path, ["W103"])) == ["W103"]

    def test_wire_rules_silent_outside_wire_scope(self, tmp_path):
        path = write(tmp_path, "repro/core/dump.py", """\
            def push(sock, data):
                sock.send(data)
                sock.sendall(data)
            """)
        assert lint(path, ["W1"]).clean


class TestRegistryDocsRules:
    def test_r100_missing_docs(self, tmp_path):
        path = write(tmp_path, "repro/core/mod.py", "X = 1\n")
        report = lint(path, ["R100"], root=tmp_path)
        assert rule_ids(report) == ["R100", "R100", "R100"]

    def test_r101_undocumented_method_caught(self, tmp_path):
        make_docs(tmp_path, readme="`goodm`", design="`goodm`")
        path = write(tmp_path, "repro/methods/adapters.py", """\
            @register_method("goodm")
            def build_good():
                pass

            @register_method("mystery")
            def build_mystery():
                pass
            """)
        report = lint(path, ["R101"], root=tmp_path)
        assert rule_ids(report) == ["R101", "R101"]
        assert all("mystery" in f.message for f in report.findings)

    def test_r102_undocumented_executor_caught(self, tmp_path):
        make_docs(tmp_path, design="backends: `serial`")
        path = write(tmp_path, "repro/methods/executors.py", """\
            class SerialExecutor:
                name = "serial"

            class GhostExecutor:
                name = "ghost"

            register_executor(SerialExecutor())
            register_executor(GhostExecutor())
            """)
        report = lint(path, ["R102"], root=tmp_path)
        assert rule_ids(report) == ["R102"]
        assert "ghost" in report.findings[0].message

    def test_r103_r105_progress_vocabulary(self, tmp_path):
        make_docs(tmp_path, design="kinds: `alpha`")
        progress = write(tmp_path, "repro/methods/progress.py", '''\
            """Event kinds: "alpha"."""

            ALPHA = "alpha"
            BETA = "beta"
            ''')
        write(tmp_path, "repro/methods/batch.py", """\
            from .progress import ALPHA

            def emit():
                return ALPHA
            """)
        report = run_lint(
            [tmp_path / "repro"], rules=["R103", "R105"], root=tmp_path
        )
        assert rule_ids(report) == ["R103", "R103", "R105"]
        assert all("BETA" in f.message for f in report.findings)
        assert lint(progress, ["R103"], root=tmp_path).findings == [
            f for f in report.findings if f.rule_id == "R103"
        ]

    def test_r104_ledger_kinds(self, tmp_path):
        make_docs(tmp_path, design="records: `hello`")
        path = write(tmp_path, "repro/methods/ledger.py", """\
            HELLO = "hello"
            GOODBYE = "goodbye"
            """)
        report = lint(path, ["R104"], root=tmp_path)
        assert rule_ids(report) == ["R104"]
        assert "goodbye" in report.findings[0].message

    def test_r106_schema_tag_documented_or_caught(self, tmp_path):
        make_docs(tmp_path, design="speaks repro.known/v1 frames")
        path = write(tmp_path, "repro/core/wire.py", """\
            KNOWN_SCHEMA = "repro.known/v1"
            GHOST_SCHEMA = "repro.ghost/v2"
            """)
        report = lint(path, ["R106"], root=tmp_path)
        assert rule_ids(report) == ["R106"]
        assert "repro.ghost/v2" in report.findings[0].message


class TestCacheTokenRules:
    def test_c101_rebind_caught(self, tmp_path):
        path = write(tmp_path, "repro/methods/key.py", """\
            def key(config):
                token = mc_token(config)
                token = "forged"
                return token
            """)
        report = lint(path, ["C101"])
        assert rule_ids(report) == ["C101"]
        assert report.findings[0].line == 3

    def test_c101_appends_clean(self, tmp_path):
        path = write(tmp_path, "repro/methods/key.py", """\
            def key(config, flag, ledger):
                token = mc_token(config)
                token += "+realloc"
                token += "+xshard" if ledger else "+realloc"
                token = token + "+extra"
                return token
            """)
        assert lint(path, ["C101"]).clean

    def test_c101_non_append_aug_caught(self, tmp_path):
        path = write(tmp_path, "repro/methods/key.py", """\
            def key(config, suffix):
                token = mc_token(config)
                token += suffix
                return token
            """)
        assert rule_ids(lint(path, ["C101"])) == ["C101"]

    def test_c102_uncovered_field_caught(self, tmp_path):
        write(tmp_path, "repro/core/montecarlo.py", """\
            class MonteCarloConfig:
                trials: int = 1000
                secret_knob: float = 1.0
            """)
        write(tmp_path, "repro/methods/cache.py", """\
            def mc_token(config):
                return "trials=%d" % config.trials
            """)
        report = run_lint(
            [tmp_path / "repro"], rules=["C102"], root=tmp_path
        )
        assert rule_ids(report) == ["C102"]
        assert "secret_knob" in report.findings[0].message
        assert report.findings[0].line == 3

    def test_c102_identity_proof_annotation_suppresses(self, tmp_path):
        write(tmp_path, "repro/core/montecarlo.py", """\
            class MonteCarloConfig:
                trials: int = 1000
                # repro: allow[C102] bit-identity proof: property-tested
                secret_knob: float = 1.0
            """)
        write(tmp_path, "repro/methods/cache.py", """\
            def mc_token(config):
                return "trials=%d" % config.trials
            """)
        report = run_lint(
            [tmp_path / "repro"], rules=["C102"], root=tmp_path
        )
        assert report.clean
        assert [f.rule_id for f in report.suppressed] == ["C102"]


class TestSuppressionAudit:
    def test_l100_unparsable_file(self, tmp_path):
        path = write(tmp_path, "repro/core/broken.py", "def f(:\n")
        report = lint(path, ["D101"])
        assert rule_ids(report) == ["L100"]

    def test_l101_reasonless_allow_gates(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            import time

            def stamp():
                return time.time()  # repro: allow[D101]
            """)
        report = lint(path, ["D101"])
        assert rule_ids(report) == ["L101"]
        # The suppression still applied — D101 is audited, not gating.
        assert [f.rule_id for f in report.suppressed] == ["D101"]

    def test_l102_stale_allow_on_full_run(self, tmp_path):
        make_docs(tmp_path)
        path = write(tmp_path, "repro/core/est.py", """\
            # repro: allow[D101] nothing here needs this
            def stamp(clock):
                return clock()
            """)
        report = lint(path, rules=None, root=tmp_path)
        assert rule_ids(report) == ["L102"]

    def test_l102_not_emitted_on_partial_run(self, tmp_path):
        path = write(tmp_path, "repro/core/est.py", """\
            # repro: allow[W102] covered by a family this run skips
            def stamp(clock):
                return clock()
            """)
        assert lint(path, ["D101"]).clean


class TestCli:
    def test_exit_0_on_clean_tree(self, tmp_path, capsys):
        make_docs(tmp_path)
        write(tmp_path, "repro/core/est.py", "X = 1\n")
        code = main([str(tmp_path / "repro"), "--root", str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_1_on_findings(self, tmp_path, capsys):
        make_docs(tmp_path)
        write(tmp_path, "repro/core/est.py", """\
            import time

            def stamp():
                return time.time()
            """)
        code = main([str(tmp_path / "repro"), "--root", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "D101" in out and "est.py:4" in out

    def test_exit_2_on_usage_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main([])
        assert err.value.code == 2
        write(tmp_path, "x.py", "X = 1\n")
        with pytest.raises(SystemExit) as err:
            main([str(tmp_path), "--rules", "Z9"])
        assert err.value.code == 2
        with pytest.raises(SystemExit) as err:
            main([str(tmp_path / "missing")])
        assert err.value.code == 2
        capsys.readouterr()

    def test_github_format(self, tmp_path, capsys):
        make_docs(tmp_path)
        write(tmp_path, "repro/core/est.py", """\
            import time
            T = time.time()
            """)
        code = main([
            str(tmp_path / "repro"), "--root", str(tmp_path),
            "--format", "github",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=D101" in out

    def test_json_report_round_trips(self, tmp_path, capsys):
        make_docs(tmp_path)
        write(tmp_path, "repro/core/est.py", """\
            import time

            def stamp():
                return time.time()

            def later():
                return time.time()  # repro: allow[D101] display only
            """)
        code = main([
            str(tmp_path / "repro"), "--root", str(tmp_path),
            "--format", "json",
        ])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == REPORT_SCHEMA
        assert data["files_scanned"] == 1
        findings = [Finding.from_dict(f) for f in data["findings"]]
        suppressed = [Finding.from_dict(f) for f in data["suppressed"]]
        assert [f.rule_id for f in findings] == ["D101"]
        assert [f.rule_id for f in suppressed] == ["D101"]
        assert suppressed[0].suppressed and suppressed[0].reason
        for finding in findings + suppressed:
            assert finding.to_dict()["schema"] == FINDING_SCHEMA
            assert Finding.from_dict(finding.to_dict()) == finding

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="lint-finding"):
            Finding.from_dict({"schema": "repro.other/v1"})

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in available_rules():
            assert rule_id in out


class TestRealTree:
    """The gate the lint-gate CI job enforces, in-process."""

    def test_src_lints_clean(self):
        report = run_lint([ROOT / "src"], root=ROOT)
        assert report.clean, "\n".join(
            f"{f.path}:{f.line}: {f.rule_id} {f.message}"
            for f in report.findings
        )
        assert report.files_scanned > 50

    def test_every_suppression_has_a_reason(self):
        report = run_lint([ROOT / "src"], root=ROOT)
        assert report.suppressed, "expected audited suppressions"
        for finding in report.suppressed:
            assert finding.reason, (
                f"{finding.path}:{finding.line} suppresses "
                f"{finding.rule_id} without a reason"
            )

    def test_self_check_passes(self, capsys):
        assert main(["--self-check", "--root", str(ROOT)]) == 0
        assert "agree" in capsys.readouterr().out
