"""End-to-end integration tests: synthesis → simulation → methods.

These exercise the full pipeline the paper's experiments run through,
asserting the cross-method relationships that make the reproduction
trustworthy.
"""

import math

import numpy as np
import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    SoftArchRates,
    SystemModel,
    avf_mttf,
    avf_sofr_mttf,
    compare_methods,
    exact_component_mttf,
    first_principles_mttf,
    monte_carlo_mttf,
    softarch_from_value_graph,
    softarch_mttf,
    validity_report,
)
from repro.core.validity import Regime
from repro.harness.spec_setup import processor_profile
from repro.masking import MaskingTrace
from repro.microarch import MachineConfig, simulate
from repro.ser import paper_unit_rate_per_second
from repro.units import SECONDS_PER_DAY
from repro.workloads import (
    combined_workload,
    day_workload,
    spec_benchmark,
    synthesize_trace,
)

BENCH = "crafty"
WINDOW = 6_000


@pytest.fixture(scope="module")
def sim_result():
    trace = synthesize_trace(spec_benchmark(BENCH), WINDOW, seed=5)
    return trace, simulate(
        trace, MachineConfig.power4_like(), workload=BENCH
    )


class TestFullPipeline:
    def test_uniprocessor_methods_agree(self, sim_result):
        _trace, result = sim_result
        components = [
            Component(
                name,
                paper_unit_rate_per_second(name),
                result.masking_trace.profile(name),
            )
            for name in (
                "int_unit", "fp_unit", "decode_unit", "register_file"
            )
        ]
        system = SystemModel(components)
        standard = avf_sofr_mttf(system).mttf_seconds
        exact = first_principles_mttf(system).mttf_seconds
        softarch = softarch_mttf(system).mttf_seconds
        monte = monte_carlo_mttf(
            system, MonteCarloConfig(trials=40_000, seed=3)
        )
        # Section 5.1: everything agrees in this regime.
        assert standard == pytest.approx(exact, rel=1e-6)
        assert softarch == pytest.approx(exact, rel=1e-6)
        assert abs(monte.mttf_seconds - exact) < (
            5 * monte.std_error_seconds
        )

    def test_validity_report_flags_safe(self, sim_result):
        _trace, result = sim_result
        system = SystemModel(
            [
                Component(
                    "int_unit",
                    paper_unit_rate_per_second("int_unit"),
                    result.masking_trace.profile("int_unit"),
                )
            ]
        )
        assert validity_report(system).overall_regime is Regime.SAFE

    def test_value_graph_consistent(self, sim_result):
        trace, result = sim_result
        timeline = softarch_from_value_graph(
            trace,
            result.schedule,
            MachineConfig.power4_like(),
            SoftArchRates.paper_rates(),
        )
        assert timeline.mttf() > 0
        assert timeline.event_count > 0

    def test_masking_trace_round_trips_through_disk(
        self, sim_result, tmp_path
    ):
        _trace, result = sim_result
        path = tmp_path / "trace.npz"
        result.masking_trace.save(path)
        loaded = MaskingTrace.load(path)
        profile_a = result.masking_trace.profile("int_unit")
        profile_b = loaded.profile("int_unit")
        rate = paper_unit_rate_per_second("int_unit")
        assert exact_component_mttf(rate, profile_a) == pytest.approx(
            exact_component_mttf(rate, profile_b), rel=1e-12
        )

    def test_compare_methods_report(self, sim_result):
        _trace, result = sim_result
        system = SystemModel(
            [
                Component(
                    "int_unit",
                    paper_unit_rate_per_second("int_unit"),
                    result.masking_trace.profile("int_unit"),
                )
            ]
        )
        comparison = compare_methods(
            system,
            label=BENCH,
            mc_config=MonteCarloConfig(trials=20_000, seed=1),
            reference="exact",
            include_softarch=True,
        )
        assert comparison.abs_error("avf_sofr") < 1e-4
        assert comparison.abs_error("softarch") < 1e-6
        assert "first_principles" in comparison.method_names


class TestLongRunPipeline:
    def test_combined_workload_from_real_traces(self):
        first = processor_profile("gzip", 4_000)
        second = processor_profile("swim", 4_000)
        workload = combined_workload(first, second)
        rate = 1e11 * 1e-8 / (8760 * 3600)
        approx = avf_mttf(rate, workload)
        exact = exact_component_mttf(rate, workload)
        softarch_val = softarch_mttf(
            SystemModel([Component("proc", rate, workload)])
        ).mttf_seconds
        monte = monte_carlo_mttf(
            SystemModel([Component("proc", rate, workload)]),
            MonteCarloConfig(trials=60_000, seed=9),
        )
        # AVF breaks; SoftArch and MC track the exact value.
        assert abs(approx - exact) / exact > 0.02
        assert softarch_val == pytest.approx(exact, rel=1e-4)
        assert abs(monte.mttf_seconds - exact) < 5 * monte.std_error_seconds

    def test_cluster_regimes(self):
        profile = day_workload()
        rate = 1.0 / (365.25 * SECONDS_PER_DAY)
        small = SystemModel(
            [Component("node", rate, profile, multiplicity=8)]
        )
        large = SystemModel(
            [Component("node", rate, profile, multiplicity=50_000)]
        )
        small_err = abs(
            avf_sofr_mttf(small).mttf_seconds
            - first_principles_mttf(small).mttf_seconds
        ) / first_principles_mttf(small).mttf_seconds
        large_err = abs(
            avf_sofr_mttf(large).mttf_seconds
            - first_principles_mttf(large).mttf_seconds
        ) / first_principles_mttf(large).mttf_seconds
        assert small_err < 0.01
        assert large_err > 0.3
        assert validity_report(large).overall_regime is not Regime.SAFE

    def test_phase_conventions_agree_at_small_mass(self):
        profile = day_workload()
        rate = 1e-11
        system = SystemModel([Component("node", rate, profile)])
        zero = monte_carlo_mttf(
            system, MonteCarloConfig(trials=60_000, seed=4)
        )
        random = monte_carlo_mttf(
            system,
            MonteCarloConfig(
                trials=60_000, seed=5, start_phase="random"
            ),
        )
        pooled = math.hypot(
            zero.std_error_seconds, random.std_error_seconds
        )
        assert abs(zero.mttf_seconds - random.mttf_seconds) < 5 * pooled
