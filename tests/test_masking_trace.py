"""Tests for MaskingTrace."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.masking import MaskingTrace


@pytest.fixture
def trace():
    return MaskingTrace(
        {
            "int_unit": np.array([1, 1, 0, 0], dtype=bool),
            "register_file": np.array([0.5, 0.25, 0.25, 1.0]),
        },
        clock_hz=2.0e9,
        workload="unit-test",
    )


class TestConstruction:
    def test_component_names(self, trace):
        assert set(trace.component_names) == {"int_unit", "register_file"}

    def test_duration(self, trace):
        assert trace.duration_seconds == pytest.approx(4 / 2.0e9)

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            MaskingTrace({})

    def test_rejects_length_mismatch(self):
        with pytest.raises(TraceError):
            MaskingTrace(
                {"a": np.ones(3), "b": np.ones(4)},
            )

    def test_rejects_out_of_range_values(self):
        with pytest.raises(TraceError):
            MaskingTrace({"a": np.array([0.5, 1.5])})

    def test_rejects_bad_clock(self):
        with pytest.raises(TraceError):
            MaskingTrace({"a": np.ones(2)}, clock_hz=0.0)


class TestQueries:
    def test_avf(self, trace):
        assert trace.avf("int_unit") == pytest.approx(0.5)
        assert trace.avf("register_file") == pytest.approx(0.5)

    def test_profile_avf_matches(self, trace):
        for name in trace.component_names:
            assert trace.profile(name).avf == pytest.approx(trace.avf(name))

    def test_profile_period(self, trace):
        assert trace.profile("int_unit").period == pytest.approx(
            trace.duration_seconds
        )

    def test_unknown_component(self, trace):
        with pytest.raises(TraceError):
            trace.mask("does-not-exist")

    def test_utilization_summary(self, trace):
        summary = trace.utilization_summary()
        assert summary["int_unit"] == pytest.approx(0.5)


class TestPersistence:
    def test_save_load_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = MaskingTrace.load(path)
        assert loaded.workload == "unit-test"
        assert loaded.clock_hz == pytest.approx(trace.clock_hz)
        for name in trace.component_names:
            np.testing.assert_allclose(loaded.mask(name), trace.mask(name))
