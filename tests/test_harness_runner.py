"""Tests for the experiment CLI (repro-experiments)."""

from repro.harness.runner import main


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "sec5.1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["fig4", "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "SOFR" in out
        assert "completed in" in out

    def test_markdown_output(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(
            ["table2", "--markdown", str(report)]
        ) == 0
        content = report.read_text()
        assert content.startswith("# Experiment results")
        assert "table2" in content

    def test_parallel_flags_accepted(self, capsys):
        assert main(
            [
                "ablation.convergence", "--trials", "500",
                "--workers", "2", "--executor", "process",
                "--mc-chunks", "2",
            ]
        ) == 0
        assert "completed in" in capsys.readouterr().out

    def test_cache_dir_warm_rerun_hits(self, tmp_path, capsys):
        args = [
            "ablation.hybrid", "--cache-dir", str(tmp_path / "cache")
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "estimate cache" in cold and "disk_hits=0" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "misses=0" in warm

    def test_every_experiment_emits_result_set(self, tmp_path, capsys):
        # --json on a cheap, closed-form experiment: the merged set must
        # be written (every experiment now carries a result_set).
        out = tmp_path / "rs.json"
        assert main(["table2", "--json", str(out)]) == 0
        from repro.methods import ResultSet

        assert len(ResultSet.from_json(out)) > 0

    def test_non_sweep_experiments_ignore_shard(self, tmp_path, capsys):
        # --shard is honoured by the sweep experiments; the rest accept
        # and ignore it, producing the unsharded artifact.
        from repro.methods import ResultSet

        full = tmp_path / "full.json"
        assert main(
            ["ablation.convergence", "--trials", "500", "--json",
             str(full)]
        ) == 0
        paths = []
        for index in range(2):
            out = tmp_path / f"shard{index}.json"
            paths.append(out)
            assert main(
                ["ablation.convergence", "--trials", "500", "--shard",
                 f"{index}/2", "--json", str(out)]
            ) == 0
        capsys.readouterr()
        sets = [ResultSet.from_json(p) for p in paths]
        assert sets[0] == sets[1] == ResultSet.from_json(full)

    def test_merge_command(self, tmp_path, capsys):
        from repro.methods import ResultSet

        full = tmp_path / "full.json"
        shard_paths = []
        args = ["fig5", "--trials", "400", "--mc-chunks", "2"]
        assert main(args + ["--json", str(full)]) == 0
        for index in range(2):
            out = tmp_path / f"s{index}.json"
            shard_paths.append(str(out))
            assert main(
                args + ["--shard", f"{index}/2", "--json", str(out)]
            ) == 0
        merged = tmp_path / "merged.json"
        assert main(
            ["merge", *shard_paths, "--json", str(merged)]
        ) == 0
        assert "merged 2 shard(s)" in capsys.readouterr().out
        assert ResultSet.from_json(merged) == ResultSet.from_json(full)

    def test_merge_requires_inputs_and_output(self, tmp_path, capsys):
        assert main(["merge"]) == 1
        assert main(["merge", str(tmp_path / "missing.json")]) == 1

    def test_target_stderr_run_records_adaptive_trials(
        self, tmp_path, capsys
    ):
        from repro.methods import ResultSet

        out = tmp_path / "adaptive.json"
        assert main(
            ["fig5", "--trials", "20000", "--mc-chunks", "10",
             "--target-stderr", "0.05", "--json", str(out)]
        ) == 0
        result_set = ResultSet.from_json(out)
        trials = result_set.reference_trials()
        assert all(0 < t < 20000 for t in trials.values())
        assert all(
            rel <= 0.05
            for rel in result_set.reference_rel_stderr().values()
        )

    def test_target_stderr_defaults_chunk_granularity(
        self, tmp_path, capsys
    ):
        # Without --mc-chunks, --target-stderr must still be able to
        # stop early (the CLI defaults to 16 chunks and says so).
        from repro.methods import ResultSet

        out = tmp_path / "auto.json"
        assert main(
            ["fig5", "--trials", "16000", "--target-stderr", "0.1",
             "--json", str(out)]
        ) == 0
        assert "using 16 chunks" in capsys.readouterr().err
        trials = ResultSet.from_json(out).reference_trials()
        assert all(0 < t < 16000 for t in trials.values())

    def test_pipeline_flags_reproduce_the_phased_run(
        self, tmp_path, capsys
    ):
        from repro.methods import ResultSet

        phased = tmp_path / "phased.json"
        piped = tmp_path / "piped.json"
        base = ["fig5", "--trials", "2000", "--mc-chunks", "4"]
        assert main([*base, "--json", str(phased)]) == 0
        assert main(
            [*base, "--pipeline-methods", "--workers", "2",
             "--json", str(piped)]
        ) == 0
        assert ResultSet.from_json(piped) == ResultSet.from_json(phased)
        # --no-pipeline-methods is accepted and phased again.
        assert main([*base, "--no-pipeline-methods"]) == 0

    def test_reallocate_budget_flag_runs_and_warns_without_target(
        self, tmp_path, capsys
    ):
        out = tmp_path / "realloc.json"
        assert main(
            ["fig5", "--trials", "4000", "--mc-chunks", "4",
             "--target-stderr", "0.05", "--pipeline-methods",
             "--reallocate-budget", "--progress", "--json", str(out)]
        ) == 0
        assert out.exists()
        capsys.readouterr()
        # Without a stopping rule the flag is a documented no-op and
        # the CLI says so.
        assert main(
            ["fig4", "--trials", "500", "--reallocate-budget"]
        ) == 0
        assert "no-op" in capsys.readouterr().err

    def test_progress_flag_streams_events(self, capsys):
        assert main(
            ["fig5", "--trials", "1000", "--mc-chunks", "2",
             "--executor", "process", "--workers", "2", "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "[progress]" in err and "done trials=1000" in err
