"""Tests for the experiment CLI (repro-experiments)."""

from repro.harness.runner import main


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "sec5.1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["fig4", "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "SOFR" in out
        assert "completed in" in out

    def test_markdown_output(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(
            ["table2", "--markdown", str(report)]
        ) == 0
        content = report.read_text()
        assert content.startswith("# Experiment results")
        assert "table2" in content
