"""Tests for the experiment CLI (repro-experiments)."""

from repro.harness.runner import main


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "sec5.1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["fig4", "--trials", "2000"]) == 0
        out = capsys.readouterr().out
        assert "SOFR" in out
        assert "completed in" in out

    def test_markdown_output(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(
            ["table2", "--markdown", str(report)]
        ) == 0
        content = report.read_text()
        assert content.startswith("# Experiment results")
        assert "table2" in content

    def test_parallel_flags_accepted(self, capsys):
        assert main(
            [
                "ablation.convergence", "--trials", "500",
                "--workers", "2", "--executor", "process",
                "--mc-chunks", "2",
            ]
        ) == 0
        assert "completed in" in capsys.readouterr().out

    def test_cache_dir_warm_rerun_hits(self, tmp_path, capsys):
        args = [
            "ablation.hybrid", "--cache-dir", str(tmp_path / "cache")
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "estimate cache" in cold and "disk_hits=0" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "misses=0" in warm

    def test_every_experiment_emits_result_set(self, tmp_path, capsys):
        # --json on a cheap, closed-form experiment: the merged set must
        # be written (every experiment now carries a result_set).
        out = tmp_path / "rs.json"
        assert main(["table2", "--json", str(out)]) == 0
        from repro.methods import ResultSet

        assert len(ResultSet.from_json(out)) > 0
