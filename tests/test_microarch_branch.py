"""Tests for the bimodal branch predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.microarch import BimodalPredictor


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(16)
        for _ in range(4):
            p.predict_and_update(0x100, True)
        assert p.predict_and_update(0x100, True)

    def test_learns_always_not_taken(self):
        p = BimodalPredictor(16)
        for _ in range(4):
            p.predict_and_update(0x100, False)
        assert p.predict_and_update(0x100, False)

    def test_hysteresis_survives_single_flip(self):
        p = BimodalPredictor(16, initial=3)
        p.predict_and_update(0x100, False)  # 3 -> 2
        assert p.predict_and_update(0x100, True)  # still predicts taken

    def test_mispredict_rate_on_alternating(self):
        p = BimodalPredictor(16, initial=1)
        for i in range(1000):
            p.predict_and_update(0x100, i % 2 == 0)
        assert p.mispredict_rate > 0.4

    def test_distinct_pcs_use_distinct_counters(self):
        p = BimodalPredictor(1024)
        for _ in range(4):
            p.predict_and_update(0x100, True)
            p.predict_and_update(0x200, False)
        assert p.predict_and_update(0x100, True)
        assert p.predict_and_update(0x200, False)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(1000)

    def test_rejects_bad_initial(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(16, initial=4)

    def test_rate_zero_before_predictions(self):
        assert BimodalPredictor(16).mispredict_rate == 0.0
