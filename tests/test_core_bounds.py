"""Tests for the first-order AVF error bounds (repro.core.bounds)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import avf_mttf, exact_component_mttf
from repro.core.bounds import (
    avf_error_bound,
    avf_error_first_order,
    corrected_avf_mttf,
    phase_skew_coefficient,
)
from repro.errors import EstimationError
from repro.masking import NestedProfile, PiecewiseProfile, busy_idle_profile


class TestPhaseSkew:
    def test_constant_profile_has_zero_skew(self):
        profile = PiecewiseProfile.constant(0.7, 10.0)
        assert phase_skew_coefficient(profile) == pytest.approx(0.0, abs=1e-12)

    def test_busy_idle_closed_form(self):
        # κ = -A(L-A)/(2L) for the Section-3.1.2 loop.
        busy, period = 3.0, 10.0
        profile = busy_idle_profile(busy, period)
        expected = -busy * (period - busy) / (2 * period)
        assert phase_skew_coefficient(profile) == pytest.approx(expected)

    def test_back_loaded_profile_positive(self):
        profile = PiecewiseProfile.from_segments([(5.0, 0.0), (5.0, 1.0)])
        assert phase_skew_coefficient(profile) > 0

    def test_front_loaded_profile_negative(self):
        profile = PiecewiseProfile.from_segments([(5.0, 1.0), (5.0, 0.0)])
        assert phase_skew_coefficient(profile) < 0

    def test_skew_bounded_by_half_mass(self):
        profile = PiecewiseProfile.from_segments(
            [(1.0, 0.9), (4.0, 0.1), (2.0, 0.7)]
        )
        assert abs(phase_skew_coefficient(profile)) <= (
            0.5 * profile.vulnerable_time
        )

    def test_nested_matches_flattened(self):
        inner = PiecewiseProfile.from_segments([(1.0, 1.0), (1.0, 0.0)])
        nested = NestedProfile([(6.0, inner), (4.0, 0.25)])
        # Flatten manually: 3 repetitions of inner then a constant tail.
        flat = PiecewiseProfile.from_segments(
            [(1.0, 1.0), (1.0, 0.0)] * 3 + [(4.0, 0.25)]
        )
        assert phase_skew_coefficient(nested) == pytest.approx(
            phase_skew_coefficient(flat), rel=1e-9
        )


class TestFirstOrderError:
    def test_matches_exact_error_at_small_mass(self):
        profile = busy_idle_profile(4.0, 10.0)
        rate = 1e-4  # mass 4e-4: deep inside the expansion radius
        predicted = avf_error_first_order(rate, profile)
        exact = exact_component_mttf(rate, profile)
        actual = (avf_mttf(rate, profile) - exact) / exact
        assert predicted == pytest.approx(actual, rel=1e-3)

    def test_sign_front_loaded(self):
        # Front-loaded vulnerability: AVF overestimates (positive error).
        profile = busy_idle_profile(5.0, 10.0)
        assert avf_error_first_order(0.01, profile) > 0

    def test_sign_back_loaded(self):
        profile = PiecewiseProfile.from_segments([(5.0, 0.0), (5.0, 1.0)])
        assert avf_error_first_order(0.01, profile) < 0

    def test_rejects_negative_rate(self):
        profile = busy_idle_profile(1.0, 2.0)
        with pytest.raises(EstimationError):
            avf_error_first_order(-1.0, profile)


class TestCorrectedEstimator:
    def test_second_order_accuracy(self):
        # The corrected estimator's residual must shrink quadratically
        # while the plain AVF error shrinks linearly.
        profile = busy_idle_profile(4.0, 12.0)
        residual_ratios = []
        for mass in (0.2, 0.02):
            rate = mass / profile.vulnerable_time
            exact = exact_component_mttf(rate, profile)
            plain_err = abs(avf_mttf(rate, profile) - exact) / exact
            corrected_err = abs(
                corrected_avf_mttf(rate, profile) - exact
            ) / exact
            assert corrected_err < plain_err
            residual_ratios.append(corrected_err)
        # 10x smaller mass -> ~100x smaller corrected residual.
        assert residual_ratios[1] < residual_ratios[0] / 30.0

    def test_never_vulnerable_passthrough(self):
        profile = PiecewiseProfile.constant(0.0, 5.0)
        assert math.isinf(corrected_avf_mttf(1.0, profile))

    def test_extreme_mass_falls_back(self):
        # λκ < -1 would flip the sign; the estimator must fall back.
        profile = busy_idle_profile(5.0, 10.0)
        rate = 10.0  # mass 50
        assert corrected_avf_mttf(rate, profile) == avf_mttf(rate, profile)


class TestBound:
    def test_bound_dominates_first_order(self):
        profile = PiecewiseProfile.from_segments(
            [(2.0, 0.8), (5.0, 0.0), (3.0, 0.4)]
        )
        rate = 0.05
        assert abs(avf_error_first_order(rate, profile)) <= (
            avf_error_bound(rate, profile) + 1e-15
        )

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=5.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=5,
        ),
        st.floats(min_value=1e-6, max_value=1e-2),
    )
    def test_bound_holds_against_exact(self, segments, rate):
        profile = PiecewiseProfile.from_segments(segments)
        if profile.vulnerable_time <= 1e-100:
            return  # degenerate: derated rate underflows
        exact = exact_component_mttf(rate, profile)
        approx = avf_mttf(rate, profile)
        actual = abs(approx - exact) / exact
        bound = avf_error_bound(rate, profile)
        # First-order bound plus a second-order slack margin. For tiny
        # hazard masses the true error (~mass^2) drops below float
        # rounding of the exact/approx quotient, so the slack needs an
        # absolute epsilon floor and a relative term alongside mass^2.
        mass = rate * profile.vulnerable_time
        tolerance = mass * mass + 1e-12 + 1e-9 * bound
        assert actual <= bound + tolerance
