"""Tests for the Monte-Carlo engine (both samplers)."""

import math

import numpy as np
import pytest

from repro.core import (
    ARRIVAL_INSTANCE_LIMIT,
    Component,
    MonteCarloConfig,
    SystemModel,
    exact_component_mttf,
    first_principles_mttf,
    monte_carlo_component_mttf,
    monte_carlo_mttf,
    sample_component_ttf,
    sample_system_ttf,
)
from repro.errors import EstimationError
from repro.masking import PiecewiseProfile, busy_idle_profile


class TestConfig:
    def test_rejects_bad_trials(self):
        with pytest.raises(EstimationError):
            MonteCarloConfig(trials=0)

    def test_rejects_unknown_method(self):
        with pytest.raises(EstimationError):
            MonteCarloConfig(method="magic")


class TestInverseSampler:
    def test_converges_to_exact(self, day_profile):
        lam = 3e-5
        comp = Component("c", lam, day_profile)
        exact = exact_component_mttf(lam, day_profile)
        est = monte_carlo_component_mttf(
            comp, MonteCarloConfig(trials=300_000, seed=11)
        )
        assert est.mttf_seconds == pytest.approx(exact, rel=0.01)
        # Deviations should be within ~4 standard errors.
        assert abs(est.mttf_seconds - exact) < 4.5 * est.std_error_seconds

    def test_deterministic_given_seed(self, day_profile):
        comp = Component("c", 1e-5, day_profile)
        cfg = MonteCarloConfig(trials=1000, seed=42)
        a = monte_carlo_component_mttf(comp, cfg).mttf_seconds
        b = monte_carlo_component_mttf(comp, cfg).mttf_seconds
        assert a == b

    def test_different_seeds_differ(self, day_profile):
        comp = Component("c", 1e-5, day_profile)
        a = monte_carlo_component_mttf(
            comp, MonteCarloConfig(trials=1000, seed=1)
        ).mttf_seconds
        b = monte_carlo_component_mttf(
            comp, MonteCarloConfig(trials=1000, seed=2)
        ).mttf_seconds
        assert a != b

    def test_system_converges(self, day_profile):
        system = SystemModel(
            [Component("c", 1e-5, day_profile, multiplicity=50)]
        )
        exact = first_principles_mttf(system).mttf_seconds
        est = monte_carlo_mttf(
            system, MonteCarloConfig(trials=200_000, seed=5)
        )
        assert est.mttf_seconds == pytest.approx(exact, rel=0.02)

    def test_large_cluster_supported(self, day_profile):
        # 500,000 components — the Table-2 maximum — must be tractable.
        system = SystemModel(
            [Component("c", 1e-9, day_profile, multiplicity=500_000)]
        )
        est = monte_carlo_mttf(system, MonteCarloConfig(trials=50_000, seed=3))
        exact = first_principles_mttf(system).mttf_seconds
        assert est.mttf_seconds == pytest.approx(exact, rel=0.03)

    def test_never_failing_component(self):
        comp = Component("c", 1e-6, PiecewiseProfile.constant(0.0, 10.0))
        est = monte_carlo_component_mttf(comp, MonteCarloConfig(trials=100))
        assert math.isinf(est.mttf_seconds)


class TestArrivalSampler:
    def test_agrees_with_inverse(self, day_profile):
        lam = 5e-5
        comp = Component("c", lam, day_profile)
        inv = sample_component_ttf(
            comp, MonteCarloConfig(trials=150_000, seed=7)
        )
        arr = sample_component_ttf(
            comp, MonteCarloConfig(trials=150_000, seed=8, method="arrival")
        )
        assert arr.mean() == pytest.approx(inv.mean(), rel=0.02)
        # Distributional agreement, not just the mean: compare deciles.
        q = np.linspace(0.1, 0.9, 9)
        np.testing.assert_allclose(
            np.quantile(arr, q), np.quantile(inv, q), rtol=0.05
        )

    def test_fractional_masking(self, fractional_profile):
        # Register-file-style probabilistic masking.
        lam = 0.05
        comp = Component("rf", lam, fractional_profile)
        exact = exact_component_mttf(lam, fractional_profile)
        arr = sample_component_ttf(
            comp, MonteCarloConfig(trials=100_000, seed=9, method="arrival")
        )
        assert arr.mean() == pytest.approx(exact, rel=0.02)

    def test_system_min_semantics(self, day_profile):
        system = SystemModel(
            [
                Component("a", 2e-5, day_profile),
                Component("b", 1e-5, day_profile, multiplicity=2),
            ]
        )
        exact = first_principles_mttf(system).mttf_seconds
        est = monte_carlo_mttf(
            system,
            MonteCarloConfig(trials=60_000, seed=10, method="arrival"),
        )
        assert est.mttf_seconds == pytest.approx(exact, rel=0.03)

    def test_instance_limit_enforced(self, day_profile):
        system = SystemModel(
            [
                Component(
                    "c",
                    1e-6,
                    day_profile,
                    multiplicity=ARRIVAL_INSTANCE_LIMIT + 1,
                )
            ]
        )
        with pytest.raises(EstimationError):
            monte_carlo_mttf(
                system, MonteCarloConfig(trials=10, method="arrival")
            )

    def test_never_vulnerable_rejected(self):
        # The paper's procedure would loop forever; we fail loudly.
        comp = Component("c", 1.0, PiecewiseProfile.constant(0.0, 1.0))
        with pytest.raises(EstimationError):
            sample_component_ttf(
                comp, MonteCarloConfig(trials=10, method="arrival")
            )

    def test_rounds_cap_triggers(self):
        # AVF = 1e-4 with a tiny cap must hit the guard.
        profile = PiecewiseProfile.from_segments(
            [(1.0, 1.0), (9999.0, 0.0)]
        )
        comp = Component("c", 1.0, profile)
        with pytest.raises(EstimationError):
            sample_component_ttf(
                comp,
                MonteCarloConfig(
                    trials=1000, method="arrival", max_arrival_rounds=2
                ),
            )


class TestEstimates:
    def test_stderr_shrinks_with_trials(self, day_profile):
        comp = Component("c", 1e-5, day_profile)
        small = monte_carlo_component_mttf(
            comp, MonteCarloConfig(trials=1_000, seed=1)
        )
        large = monte_carlo_component_mttf(
            comp, MonteCarloConfig(trials=100_000, seed=1)
        )
        assert large.std_error_seconds < small.std_error_seconds

    def test_ci_contains_exact_usually(self, day_profile):
        lam = 1e-5
        comp = Component("c", lam, day_profile)
        exact = exact_component_mttf(lam, day_profile)
        hits = 0
        for seed in range(20):
            est = monte_carlo_component_mttf(
                comp, MonteCarloConfig(trials=20_000, seed=seed)
            )
            lo, hi = est.ci95()
            hits += lo <= exact <= hi
        assert hits >= 16  # 95% nominal; allow wide slack

    def test_trials_recorded(self, day_profile):
        comp = Component("c", 1e-5, day_profile)
        est = monte_carlo_component_mttf(comp, MonteCarloConfig(trials=123))
        assert est.trials == 123
