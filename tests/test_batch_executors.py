"""Batch-engine executor tests: thread/process fan-out identity."""

import pytest

from repro.core import Component, MonteCarloConfig, SystemModel
from repro.errors import ConfigurationError
from repro.methods import ComponentCache, evaluate_design_space
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8, 100)
    ]


class TestExecutorIdentity:
    """workers=1 and workers=N must be numerically identical at fixed
    chunking — for the thread executor, the process executor, and across
    the two."""

    def test_thread_workers_match_serial(self, cluster_space):
        mc = MonteCarloConfig(trials=2_000, seed=3, chunks=2)
        serial = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc
        )
        threaded = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc,
            workers=4,
        )
        assert serial == threaded

    def test_process_workers_match_serial(self, cluster_space):
        mc = MonteCarloConfig(trials=2_000, seed=3, chunks=2)
        serial = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc
        )
        processed = evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=mc,
            workers=2,
            executor="process",
        )
        assert serial == processed

    def test_process_single_worker_matches_many(self, cluster_space):
        mc = MonteCarloConfig(trials=1_500, seed=7, chunks=3)
        one = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=1,
            executor="process",
        )
        many = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=3,
            executor="process",
        )
        assert one == many

    def test_process_unchunked_matches_serial(self, cluster_space):
        # chunks=1: the process pool parallelises across grid points
        # only; numbers still match the serial run exactly.
        mc = MonteCarloConfig(trials=2_000, seed=5)
        serial = evaluate_design_space(
            cluster_space, methods=["sofr_only"], mc_config=mc
        )
        processed = evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=mc,
            workers=2,
            executor="process",
        )
        assert serial == processed

    def test_exact_reference_through_process_pool(self, cluster_space):
        serial = evaluate_design_space(
            cluster_space,
            methods=["avf_sofr"],
            reference="exact",
        )
        processed = evaluate_design_space(
            cluster_space,
            methods=["avf_sofr"],
            reference="exact",
            workers=2,
            executor="process",
        )
        assert serial == processed


class TestExecutorValidation:
    def test_unknown_executor_rejected(self, cluster_space):
        with pytest.raises(ConfigurationError, match="executor"):
            evaluate_design_space(
                cluster_space, methods=["avf_sofr"], executor="fiber"
            )

    def test_nonpositive_workers_rejected(self, cluster_space):
        with pytest.raises(ConfigurationError, match="workers"):
            evaluate_design_space(
                cluster_space, methods=["avf_sofr"], workers=0
            )


class TestEngineSemantics:
    def test_reference_estimate_reused_when_also_selected(
        self, cluster_space
    ):
        result = evaluate_design_space(
            cluster_space,
            methods=["first_principles", "avf_sofr"],
            reference="exact",
        )
        for comparison in result:
            assert comparison.estimates["first_principles"] is (
                comparison.reference
            )

    def test_process_pool_skips_cached_references(self, cluster_space):
        mc = MonteCarloConfig(trials=1_000, seed=1)
        cache = ComponentCache()
        evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            cache=cache,
        )
        hits_before = cache.estimate_hits
        again = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            cache=cache,
            workers=2,
            executor="process",
        )
        assert cache.estimate_hits > hits_before
        assert len(again) == len(cluster_space)
