"""Tests for MTTFEstimate, pipeline statistics, and misc reporting."""

import math

import pytest

from repro.errors import EstimationError
from repro.microarch.stats import PipelineStats
from repro.reliability import MTTFEstimate
from repro.units import SECONDS_PER_YEAR


class TestMttfEstimate:
    def test_years_conversion(self):
        est = MTTFEstimate(mttf_seconds=SECONDS_PER_YEAR)
        assert est.mttf_years == pytest.approx(1.0)

    def test_fit_reporting(self):
        est = MTTFEstimate(mttf_seconds=1e9 * 3600.0)
        assert est.fit == pytest.approx(1.0)

    def test_fit_zero_for_infinite(self):
        est = MTTFEstimate(mttf_seconds=math.inf)
        assert est.fit == 0.0

    def test_ci95(self):
        est = MTTFEstimate(mttf_seconds=100.0, std_error_seconds=10.0)
        lo, hi = est.ci95()
        assert lo == pytest.approx(100 - 19.6)
        assert hi == pytest.approx(100 + 19.6)

    def test_str_contains_method(self):
        est = MTTFEstimate(
            mttf_seconds=SECONDS_PER_YEAR,
            std_error_seconds=1.0,
            trials=100,
            method="monte_carlo",
        )
        text = str(est)
        assert "monte_carlo" in text and "n=100" in text

    def test_str_infinite(self):
        assert "inf" in str(MTTFEstimate(mttf_seconds=math.inf))

    def test_validation(self):
        with pytest.raises(EstimationError):
            MTTFEstimate(mttf_seconds=0.0)
        with pytest.raises(EstimationError):
            MTTFEstimate(mttf_seconds=1.0, std_error_seconds=-1.0)


class TestPipelineStats:
    def test_ipc(self):
        stats = PipelineStats(instructions=100, cycles=50)
        assert stats.ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert PipelineStats().ipc == 0.0

    def test_mispredict_rate(self):
        stats = PipelineStats(branches=100, mispredictions=7)
        assert stats.mispredict_rate == pytest.approx(0.07)

    def test_mispredict_rate_no_branches(self):
        assert PipelineStats().mispredict_rate == 0.0

    def test_summary_mentions_units(self):
        stats = PipelineStats(
            instructions=10,
            cycles=20,
            unit_busy_cycles={"int": 5},
        )
        text = stats.summary()
        assert "IPC" in text
        assert "int busy: 5 cycles" in text
