"""Chaos harness for elastic ledger fleets (PR-10 satellite).

Two halves, one file:

* **Library** (imported by ``test_elastic_fleet.py``): launch real
  member *processes* against one shared ledger file, inject faults at
  controlled protocol points, collect the survivors' ResultSet
  artifacts, and compute the oracle runs (sequential ledger replay,
  unsharded re-allocating run) the chaos assertions compare against.
* **Entry point** (``python tests/chaos.py --ledger ... --slot I``):
  one fleet member. Runs the canonical chaos sweep (the PR-5 straggler
  configuration: one slow-converging point, several early stoppers, so
  budget genuinely crosses shards) through a :class:`ChaoticLedger`
  that can kill its own process mid-round, die right after sealing a
  round, or freeze past the lease — *deterministically*, at the
  requested round, instead of racing parent-sent signals against the
  protocol.

Fault vocabulary (member flags):

``--torn-round K``
    SIGKILL itself *mid-publication* of round K: the round's converged
    and open records hit the file but the sealing ``shard-barrier``
    never does — the torn-round case an adopter must complete.
``--die-after K``
    SIGKILL itself immediately after *sealing* round K — the clean
    crash boundary.
``--pause-at K --pause-for S``
    Freeze for S seconds (heartbeat stopped, exactly like a SIGSTOPped
    process) *before* publishing round K, then resume. With S past the
    fleet lease the member is departed and adopted while frozen, and
    its zombie resumption must produce byte-identical records and
    results (first-occurrence-wins dedup makes the duplicates
    harmless).
``--leave-after K`` / ``--join``
    The cooperative membership moves, passed straight to the ledger.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The canonical chaos sweep: a variant of the PR-5 straggler
#: configuration with *three* slow-converging stragglers (C=2, C=3,
#: C=4 at global points 0, 1, 2) so every slot of a 2- or 3-member
#: fleet owns one and stays active across several rounds — the
#: precondition for mid-protocol leaves, lease expiry, and adoption.
#: The large clusters stop after one chunk and free the budget pool.
CLUSTER_COUNTS = (2, 3, 4, 300, 1000)
TRIALS = 8_000
CHUNKS = 8
SEED = 3
TARGET_CI_HALFWIDTH = 250.0
METHODS = ["first_principles"]

#: Member exit code: a ``--join`` was loudly refused because the run
#: had already finished (the joiner lost the race to an adopter).
JOIN_REFUSED = 3


def build_space():
    """The deterministic design space every member (and oracle) runs."""
    from repro.core import Component, SystemModel
    from repro.masking import busy_idle_profile
    from repro.units import SECONDS_PER_DAY

    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, profile, multiplicity=c)]
            ),
        )
        for c in CLUSTER_COUNTS
    ]


def build_mc():
    from repro.core import MonteCarloConfig, StoppingRule

    return MonteCarloConfig(
        trials=TRIALS,
        seed=SEED,
        chunks=CHUNKS,
        stopping=StoppingRule(target_ci_halfwidth=TARGET_CI_HALFWIDTH),
    )


def make_chaotic_ledger(
    path,
    slot: int,
    count: int,
    *,
    replay: bool = False,
    join: bool = False,
    lease: float | None = None,
    leave_after: int | None = None,
    timeout: float = 120.0,
    torn_round: int | None = None,
    die_after: int | None = None,
    pause_at: int | None = None,
    pause_for: float = 0.0,
):
    """A BudgetLedger whose publication path injects the requested fault."""
    from repro.methods.cache import append_record
    from repro.methods.ledger import (
        BudgetLedger,
        POINT_CONVERGED,
        POINT_OPEN,
    )

    class ChaoticLedger(BudgetLedger):
        def publish_round(self, number, freed, opens, converged):
            if pause_at is not None and number == pause_at:
                # A frozen process beats no heartbeats; stopping ours
                # before the sleep reproduces SIGSTOP exactly, and
                # deterministically.
                self.stop_heartbeat()
                time.sleep(pause_for)
                self._start_heartbeat()
            if torn_round is not None and number == torn_round:
                for index, trials in converged:
                    append_record(
                        self.path,
                        self._record(
                            POINT_CONVERGED,
                            round=number,
                            index=index,
                            trials=trials,
                        ),
                    )
                for index, deficit, trials in opens:
                    append_record(
                        self.path,
                        self._record(
                            POINT_OPEN,
                            round=number,
                            index=index,
                            deficit=deficit,
                            trials=trials,
                        ),
                    )
                os.kill(os.getpid(), signal.SIGKILL)
            super().publish_round(number, freed, opens, converged)
            if die_after is not None and number == die_after:
                os.kill(os.getpid(), signal.SIGKILL)

    return ChaoticLedger(
        path,
        shard=(slot, count),
        replay=replay,
        takeover=join,
        lease=lease,
        leave_after=leave_after,
        poll_interval=0.01,
        timeout=timeout,
    )


def run_member_inline(ledger_file, slot, count, **faults):
    """One fleet member, in-process (thread-fleet tests and oracles)."""
    from repro.methods import evaluate_design_space

    return evaluate_design_space(
        build_space(),
        methods=METHODS,
        mc_config=build_mc(),
        shard=(slot, count),
        workers=1,
        pipeline_methods=True,
        reallocate_budget=True,
        budget_ledger=make_chaotic_ledger(
            ledger_file, slot, count, **faults
        ),
    )


def sequential_replay(ledger_file, count):
    """Oracle: replay every slot of a completed ledger, in any order."""
    from repro.methods import merge_result_sets

    return merge_result_sets(
        [
            run_member_inline(ledger_file, slot, count, replay=True)
            for slot in range(count)
        ]
    )


def unsharded_run():
    """Oracle: the whole sweep on one machine, local re-allocation."""
    from repro.methods import evaluate_design_space

    return evaluate_design_space(
        build_space(),
        methods=METHODS,
        mc_config=build_mc(),
        workers=1,
        pipeline_methods=True,
        reallocate_budget=True,
    )


# -- subprocess fleet driver (library half) -------------------------------


class MemberProcess:
    """One launched fleet-member subprocess and its artifact path."""

    def __init__(self, process, out_path, slot):
        self.process = process
        self.out_path = Path(out_path)
        self.slot = slot

    def wait(self, timeout=180.0):
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            raise
        return self.process.returncode

    @property
    def result(self):
        """The member's ResultSet, or None if it died artifact-less."""
        from repro.methods import ResultSet

        if not self.out_path.exists():
            return None
        return ResultSet.from_json(self.out_path)


def launch_member(ledger_file, slot, count, out_dir, *, extra=()):
    """Spawn ``python tests/chaos.py`` as fleet member ``slot``."""
    out_path = Path(out_dir) / f"member-{slot}.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--ledger",
            str(ledger_file),
            "--slot",
            str(slot),
            "--count",
            str(count),
            "--out",
            str(out_path),
            *extra,
        ],
        env=env,
        cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    return MemberProcess(process, out_path, slot)


def wait_for_round_seal(ledger_file, slot, number, count, timeout=60.0):
    """Block until ``slot`` seals round ``number`` (parent-side probe)."""
    from repro.methods import LedgerState

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if LedgerState.scan(ledger_file, count).sealed(slot, number):
            return
        time.sleep(0.05)
    raise TimeoutError(
        f"slot {slot} never sealed round {number} of {ledger_file}"
    )


def wait_for_depart(ledger_file, slot, count, timeout=60.0):
    """Block until a shard-depart record for ``slot`` is on the ledger.

    Probes :meth:`LedgerState.depart_event`, not ``departed()``: a
    survivor adopting the slot re-joins it, flipping ``departed()``
    back to False between polls.
    """
    from repro.methods import LedgerState

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if LedgerState.scan(ledger_file, count).depart_event(slot):
            return
        time.sleep(0.05)
    raise TimeoutError(f"slot {slot} never departed on {ledger_file}")


def collect_fleet(members, timeout=180.0):
    """Wait for every member; return (results, returncodes)."""
    codes = [member.wait(timeout=timeout) for member in members]
    results = [member.result for member in members]
    return results, codes


# -- subprocess entry (member half) ---------------------------------------


def _member_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="one chaos-fleet member process"
    )
    parser.add_argument("--ledger", required=True)
    parser.add_argument("--slot", type=int, required=True)
    parser.add_argument("--count", type=int, required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--lease", type=float, default=None)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--join", action="store_true")
    parser.add_argument("--leave-after", type=int, default=None)
    parser.add_argument("--torn-round", type=int, default=None)
    parser.add_argument("--die-after", type=int, default=None)
    parser.add_argument("--pause-at", type=int, default=None)
    parser.add_argument("--pause-for", type=float, default=0.0)
    args = parser.parse_args(argv)

    from repro.errors import ConfigurationError
    from repro.methods import ShardDeparted, evaluate_design_space

    try:
        result = evaluate_design_space(
            build_space(),
            methods=METHODS,
            mc_config=build_mc(),
            shard=(args.slot, args.count),
            workers=1,
            pipeline_methods=True,
            reallocate_budget=True,
            budget_ledger=make_chaotic_ledger(
                args.ledger,
                args.slot,
                args.count,
                join=args.join,
                lease=args.lease,
                leave_after=args.leave_after,
                timeout=args.timeout,
                torn_round=args.torn_round,
                die_after=args.die_after,
                pause_at=args.pause_at,
                pause_for=args.pause_for,
            ),
        )
    except ShardDeparted as departed:
        print(f"member {args.slot}: {departed}")
        return 0
    except ConfigurationError as refused:
        if args.join and "finished" in str(refused):
            # The joiner raced an in-process adopter that finished the
            # whole run first; the loud refusal is the documented
            # outcome and the adopter's results cover the slot.
            print(f"member {args.slot}: join refused: {refused}")
            return JOIN_REFUSED
        raise
    result.to_json(args.out)
    print(
        f"member {args.slot}/{args.count}: {len(result)} points, "
        f"adopted slots {[s.shard[0] for s in result.adopted]}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(_member_main())
