"""Tests for series systems (repro.reliability.series)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability import SeriesSystem, sofr_mttf
from repro.reliability.hazard import PiecewiseHazard, constant_hazard
from repro.reliability.series import min_of_iid_mttf


class TestSofrFormula:
    def test_two_identical_components(self):
        assert sofr_mttf([10.0, 10.0]) == pytest.approx(5.0)

    def test_heterogeneous(self):
        # rates 1/2 + 1/6 = 2/3 -> MTTF 1.5
        assert sofr_mttf([2.0, 6.0]) == pytest.approx(1.5)

    def test_infinite_components_ignored(self):
        assert sofr_mttf([math.inf, 4.0]) == pytest.approx(4.0)

    def test_all_infinite(self):
        assert math.isinf(sofr_mttf([math.inf, math.inf]))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sofr_mttf([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            sofr_mttf([0.0])


class TestSeriesSystem:
    def test_exponential_components_sofr_exact(self):
        # For truly exponential components SOFR is exact: this is the
        # regime where the paper's Section 3.2.1 limit applies.
        lam1, lam2 = 0.3, 0.7
        sys_ = SeriesSystem(
            [constant_hazard(lam1, 2.0), constant_hazard(lam2, 2.0)]
        )
        assert sys_.mttf() == pytest.approx(1.0 / (lam1 + lam2), rel=1e-10)

    def test_multiplicity_equals_enumeration(self):
        h = PiecewiseHazard([0.0, 1.0, 3.0], [0.5, 0.0])
        multi = SeriesSystem([h], multiplicities=[4])
        enumerated = SeriesSystem([h, h, h, h])
        assert multi.mttf() == pytest.approx(enumerated.mttf(), rel=1e-10)

    def test_system_mttf_below_component_mttf(self):
        h = PiecewiseHazard([0.0, 2.0, 4.0], [0.9, 0.1])
        single = SeriesSystem([h]).mttf()
        system = SeriesSystem([h], multiplicities=[10]).mttf()
        assert system < single

    def test_component_processes(self):
        h1 = constant_hazard(1.0, 1.0)
        h2 = constant_hazard(2.0, 1.0)
        procs = SeriesSystem([h1, h2]).component_processes()
        assert procs[0].mttf() == pytest.approx(1.0)
        assert procs[1].mttf() == pytest.approx(0.5)

    def test_component_count(self):
        sys_ = SeriesSystem(
            [constant_hazard(1.0, 1.0), constant_hazard(1.0, 1.0)],
            multiplicities=[3, 5],
        )
        assert sys_.component_count == 8

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SeriesSystem([])

    def test_rejects_bad_multiplicity(self):
        with pytest.raises(ConfigurationError):
            SeriesSystem([constant_hazard(1.0, 1.0)], multiplicities=[0])

    def test_rejects_mismatched_multiplicities(self):
        with pytest.raises(ConfigurationError):
            SeriesSystem([constant_hazard(1.0, 1.0)], multiplicities=[1, 2])


class TestMinOfIid:
    def test_exponential_min(self):
        # min of n Exp(lam) is Exp(n*lam): SOFR is exact here.
        lam = 0.8

        def survival(t):
            return np.exp(-lam * np.asarray(t))

        for n in (1, 2, 5):
            assert min_of_iid_mttf(survival, n) == pytest.approx(
                1.0 / (n * lam), rel=1e-8
            )

    def test_halfnormal_matches_figure4_direction(self):
        # For the Section 3.2.2 density SOFR *underestimates* the MTTF.
        from scipy.special import erfc

        def survival(t):
            return erfc(np.asarray(t))

        exact2 = min_of_iid_mttf(survival, 2)
        sofr2 = 1.0 / (2 * math.sqrt(math.pi))
        assert sofr2 < exact2
        assert (exact2 - sofr2) / exact2 == pytest.approx(0.146, abs=0.01)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            min_of_iid_mttf(lambda t: np.exp(-t), 0)
