"""Pipelined work-conserving scheduler tests (PR-4 tentpole).

Covers the three scheduler features — method estimates streamed into
the pool as references finalize, cancelled-chunk budget re-allocated to
the least-converged stragglers, shard-aware disk-cache prewarming —
plus the acceptance bars: bit-identity across worker counts and
executors, exact reproduction of the phased (PR-3) engine when both
features are disabled, and budget conservation.
"""

import math

import pytest

from repro.core import (
    Component,
    MomentAccumulator,
    MonteCarloConfig,
    StoppingRule,
    SystemModel,
    adaptive_chunk_configs,
    extension_chunk_config,
    grant_chunk_trials,
)
from repro.errors import EstimationError
from repro.masking import busy_idle_profile
from repro.methods import (
    ComponentCache,
    DiskCache,
    evaluate_design_space,
)
from repro.methods.progress import (
    BUDGET_REALLOCATED,
    CACHE_PREWARMED,
    METHOD_DONE,
    METHOD_STARTED,
    POINT_DONE,
    ProgressEvent,
)
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8, 100, 300, 1000)
    ]


#: Absolute-precision rule sized so the large-MTTF C=2 point exhausts
#: its base budget while the small-MTTF points stop after one chunk —
#: the configuration that exercises budget re-allocation end to end.
STRAGGLER_MC = MonteCarloConfig(
    trials=8_000,
    seed=3,
    chunks=8,
    stopping=StoppingRule(target_ci_halfwidth=250.0),
)


class TestExtensionChunks:
    def test_seeds_are_pure_functions_of_the_index(self):
        config = MonteCarloConfig(trials=8_000, seed=3, chunks=4)
        extended = MonteCarloConfig(
            trials=8_000,
            seed=3,
            chunks=4,
            stopping=StoppingRule(
                target_rel_stderr=0.01, max_trials=16_000
            ),
        )
        plan = adaptive_chunk_configs(extended)
        unit = grant_chunk_trials(config)
        # Chunk-by-chunk grants reproduce the up-front extension plan.
        for index in range(4, len(plan)):
            assert extension_chunk_config(config, index, unit) == (
                plan[index]
            )

    def test_grant_unit_matches_adaptive_extension_size(self):
        assert grant_chunk_trials(
            MonteCarloConfig(trials=8_000, chunks=4)
        ) == 2_000
        assert grant_chunk_trials(
            MonteCarloConfig(trials=3, chunks=8)
        ) == 1

    def test_rejects_invalid_arguments(self):
        config = MonteCarloConfig(trials=100, chunks=2)
        with pytest.raises(EstimationError, match="index"):
            extension_chunk_config(config, -1, 10)
        with pytest.raises(EstimationError, match="trials"):
            extension_chunk_config(config, 2, 0)


class TestAccumulatorExtension:
    def test_extension_reopens_an_exhausted_accumulator(self):
        from repro.core import moments_from_samples
        import numpy as np

        accumulator = MomentAccumulator(
            2, StoppingRule(target_rel_stderr=1e-12)
        )
        samples = np.random.default_rng(0).exponential(size=100)
        part = moments_from_samples(samples)
        accumulator.add(0, part)
        assert accumulator.add(1, part)
        assert accumulator.done and not accumulator.satisfied
        accumulator.extend_plan(2)
        assert not accumulator.done
        accumulator.add(2, part)
        assert accumulator.moments.count == 300

    def test_extending_a_satisfied_accumulator_is_rejected(self):
        from repro.core import moments_from_samples
        import numpy as np

        accumulator = MomentAccumulator(
            4, StoppingRule(target_rel_stderr=0.9)
        )
        samples = np.random.default_rng(0).exponential(size=100)
        accumulator.add(0, moments_from_samples(samples))
        assert accumulator.satisfied
        with pytest.raises(EstimationError, match="satisfied"):
            accumulator.extend_plan(1)

    def test_extend_needs_positive_chunks(self):
        with pytest.raises(EstimationError, match="extra_chunks"):
            MomentAccumulator(2).extend_plan(0)


class TestPipelinedIdentity:
    """Acceptance bar: pipelining is a schedule change, not a numbers
    change — and with both features off the engine reproduces the PR-3
    paths exactly."""

    def test_pipelined_equals_phased_at_fixed_chunking(
        self, cluster_space
    ):
        mc = MonteCarloConfig(trials=4_000, seed=3, chunks=4)
        phased = evaluate_design_space(
            cluster_space,
            methods=["first_principles", "sofr_only"],
            mc_config=mc,
        )
        for executor, workers in (("thread", 3), ("process", 2)):
            piped = evaluate_design_space(
                cluster_space,
                methods=["first_principles", "sofr_only"],
                mc_config=mc,
                workers=workers,
                executor=executor,
                pipeline_methods=True,
            )
            assert piped == phased, executor

    def test_pipelined_adaptive_equals_phased_adaptive(
        self, cluster_space
    ):
        mc = MonteCarloConfig(
            trials=40_000,
            seed=3,
            chunks=20,
            stopping=StoppingRule(target_rel_stderr=0.05),
        )
        phased = evaluate_design_space(
            cluster_space, methods=["first_principles"], mc_config=mc
        )
        piped = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            workers=4,
            pipeline_methods=True,
        )
        assert piped == phased

    def test_pipelined_exact_reference(self, cluster_space):
        phased = evaluate_design_space(
            cluster_space, methods=["avf_sofr"], reference="exact"
        )
        piped = evaluate_design_space(
            cluster_space,
            methods=["avf_sofr"],
            reference="exact",
            workers=2,
            pipeline_methods=True,
        )
        assert piped == phased

    def test_process_pipelined_keeps_component_memoization(
        self, cluster_space
    ):
        # Per-component methods stay in the parent on the process
        # executor: every C shares one profile, so the whole sweep
        # performs exactly one component-level MC estimation instead of
        # one per point — matching the phased path's cost.
        mc = MonteCarloConfig(trials=2_000, seed=1, chunks=2)
        phased = evaluate_design_space(
            cluster_space[:3], methods=["sofr_only"], mc_config=mc
        )
        cache = ComponentCache()
        piped = evaluate_design_space(
            cluster_space[:3],
            methods=["sofr_only"],
            mc_config=mc,
            workers=2,
            executor="process",
            pipeline_methods=True,
            cache=cache,
        )
        assert piped == phased
        assert cache.misses == 1

    def test_method_events_stream_with_the_references(
        self, cluster_space
    ):
        events: list[ProgressEvent] = []
        evaluate_design_space(
            cluster_space[:3],
            methods=["first_principles", "sofr_only"],
            mc_config=MonteCarloConfig(trials=2_000, seed=1, chunks=4),
            workers=2,
            pipeline_methods=True,
            progress=events.append,
        )
        starts = [e for e in events if e.kind == METHOD_STARTED]
        dones = [e for e in events if e.kind == METHOD_DONE]
        assert {e.method for e in starts} == {
            "first_principles", "sofr_only",
        }
        assert len(dones) == 6  # 3 points x 2 methods
        # Methods launch after their own point's reference, not after
        # every reference: each label's method-start follows its
        # point-done immediately in the event order.
        for label in ("C=2", "C=8", "C=100"):
            kinds = [
                e.kind for e in events if e.label == label
            ]
            assert kinds.index(POINT_DONE) < kinds.index(METHOD_STARTED)


class TestStoppingRuleDeficit:
    def _moments(self, mean, stderr, count=100):
        from repro.core import SampleMoments

        # m2 chosen so SampleMoments.stderr reproduces `stderr`.
        m2 = stderr * stderr * (count - 1) * count
        return SampleMoments(count, mean, m2)

    def test_ranks_by_the_configured_target(self):
        # Under an absolute half-width rule the genuine straggler is
        # the point furthest from its half-width target, even when its
        # *relative* error is the smaller one.
        rule = StoppingRule(target_ci_halfwidth=250.0)
        far = self._moments(mean=1e6, stderr=1e5)  # rel 0.1, hw ~2e5
        near = self._moments(mean=10.0, stderr=5.0)  # rel 0.5, hw ~10
        assert rule.deficit(far) > rule.deficit(near)
        # A relative rule ranks the other way around.
        rel_rule = StoppingRule(target_rel_stderr=0.01)
        assert rel_rule.deficit(near) > rel_rule.deficit(far)

    def test_combined_targets_take_the_worst_constraint(self):
        rule = StoppingRule(
            target_rel_stderr=0.01, target_ci_halfwidth=250.0
        )
        moments = self._moments(mean=1e6, stderr=1e3)
        expected = max(
            (1e3 / 1e6) / 0.01, 1.96 * 1e3 / 250.0
        )
        assert rule.deficit(moments) == pytest.approx(expected)

    def test_unmeasurable_prefixes_have_no_deficit(self):
        rule = StoppingRule(target_rel_stderr=0.01)
        assert rule.deficit(self._moments(math.inf, 0.0)) is None
        assert rule.deficit(self._moments(0.0, 1.0)) is None
        assert rule.deficit(self._moments(1.0, 1.0, count=1)) is None
        # A half-width rule can still measure a mean-zero point.
        hw = StoppingRule(target_ci_halfwidth=1.0)
        assert hw.deficit(self._moments(0.0, 1.0)) is not None


class TestBudgetReallocation:
    def test_freed_budget_reaches_the_straggler(self, cluster_space):
        base = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
        )
        events: list[ProgressEvent] = []
        realloc = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            pipeline_methods=True,
            reallocate_budget=True,
            progress=events.append,
        )
        base_trials = base.reference_trials()
        realloc_trials = realloc.reference_trials()
        # The straggler (C=2: largest MTTF, absolute target) was
        # extended past its base budget; early-stopping points are
        # untouched.
        assert realloc_trials["C=2"] > base_trials["C=2"]
        for label in ("C=100", "C=300", "C=1000"):
            assert realloc_trials[label] == base_trials[label]
        grants = [e for e in events if e.kind == BUDGET_REALLOCATED]
        assert grants and all(e.granted_trials > 0 for e in grants)
        assert {e.label for e in grants} == {"C=2"}

    def test_budget_is_conserved(self, cluster_space):
        realloc = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            reallocate_budget=True,
        )
        total_budget = STRAGGLER_MC.trials * len(cluster_space)
        assert sum(realloc.reference_trials().values()) <= total_budget

    def test_bit_identical_across_workers_and_executors(
        self, cluster_space
    ):
        kwargs = dict(
            methods=["first_principles", "sofr_only"],
            mc_config=STRAGGLER_MC,
            pipeline_methods=True,
            reallocate_budget=True,
        )
        serial = evaluate_design_space(cluster_space, **kwargs)
        threaded = evaluate_design_space(
            cluster_space, workers=4, **kwargs
        )
        processed = evaluate_design_space(
            cluster_space, workers=2, executor="process", **kwargs
        )
        assert serial == threaded == processed

    def test_reallocation_without_stopping_rule_is_a_noop(
        self, cluster_space
    ):
        mc = MonteCarloConfig(trials=4_000, seed=3, chunks=4)
        plain = evaluate_design_space(
            cluster_space, methods=["first_principles"], mc_config=mc
        )
        realloc = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=mc,
            reallocate_budget=True,
        )
        assert realloc == plain

    def test_satisfied_grant_refunds_to_the_next_straggler(
        self, day_profile
    ):
        # Two stragglers: a mid-tier target both miss in base budget.
        # The worst-converged one is granted first; when it satisfies
        # mid-extension its unspent grant refunds and reaches the
        # other — total spend never exceeds the run budget.
        rate = 2.0 / SECONDS_PER_DAY
        space = [
            (
                f"C={c}",
                SystemModel(
                    [
                        Component(
                            "node", rate, day_profile, multiplicity=c
                        )
                    ]
                ),
            )
            for c in (2, 3, 100, 300, 1000)
        ]
        mc = MonteCarloConfig(
            trials=8_000,
            seed=3,
            chunks=8,
            stopping=StoppingRule(target_ci_halfwidth=400.0),
        )
        events: list[ProgressEvent] = []
        realloc = evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=mc,
            reallocate_budget=True,
            progress=events.append,
        )
        grants = [e for e in events if e.kind == BUDGET_REALLOCATED]
        assert {e.label for e in grants} >= {"C=2"}
        assert sum(realloc.reference_trials().values()) <= (
            mc.trials * len(space)
        )
        # Determinism holds for multi-round grant schedules too.
        again = evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=mc,
            workers=3,
            executor="process",
            reallocate_budget=True,
        )
        assert again == realloc

    def test_reallocated_references_never_enter_the_cache(
        self, cluster_space, tmp_path
    ):
        # A re-allocated reference depends on the whole sweep's ledger,
        # so caching it would poison later runs: a warm rerun must
        # recompute references (reproducing the cold numbers exactly)
        # while method estimates — pure functions — replay from disk.
        kwargs = dict(
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            pipeline_methods=True,
            reallocate_budget=True,
        )
        cold = evaluate_design_space(
            cluster_space,
            cache=ComponentCache(disk=DiskCache(tmp_path)),
            **kwargs,
        )
        warm_cache = ComponentCache(disk=DiskCache(tmp_path))
        warm = evaluate_design_space(
            cluster_space, cache=warm_cache, **kwargs
        )
        assert warm == cold
        ref_key = ComponentCache.estimate_key(
            "monte_carlo", cluster_space[0][1], STRAGGLER_MC,
            "monte_carlo",
        )
        assert warm_cache.disk.peek(ref_key) is None
        method_key = ComponentCache.estimate_key(
            "first_principles", cluster_space[0][1], None, "monte_carlo"
        )
        assert warm_cache.disk.peek(method_key) is not None

    def test_merge_refuses_mixing_realloc_and_plain_shards(
        self, cluster_space
    ):
        from repro.errors import ConfigurationError
        from repro.methods import merge_result_sets

        plain = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(0, 2),
        )
        realloc = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(1, 2),
            reallocate_budget=True,
        )
        assert realloc.mc_token.endswith("+realloc")
        with pytest.raises(ConfigurationError, match="different runs"):
            merge_result_sets([plain, realloc])

    def test_censored_points_are_never_candidates(self, day_profile):
        # A zero-rate point draws only infinite TTFs; granting it more
        # trials cannot help and must not happen.
        space = [
            (
                "idle",
                SystemModel([Component("idle", 0.0, day_profile)]),
            ),
            (
                "busy",
                SystemModel(
                    [
                        Component(
                            "busy", 2.0 / SECONDS_PER_DAY, day_profile
                        )
                    ]
                ),
            ),
        ]
        mc = MonteCarloConfig(
            trials=800,
            seed=1,
            chunks=4,
            stopping=StoppingRule(target_rel_stderr=1e-9),
        )
        events: list[ProgressEvent] = []
        result = evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=mc,
            reallocate_budget=True,
            progress=events.append,
        )
        grants = [e for e in events if e.kind == BUDGET_REALLOCATED]
        assert all(e.label != "idle" for e in grants)
        assert math.isinf(result[0].reference.mttf_seconds)
        assert result[0].reference.trials == 800


class TestPrewarmAndPublication:
    def test_prewarm_event_reports_disk_entries(
        self, cluster_space, tmp_path
    ):
        mc = MonteCarloConfig(trials=1_000, seed=1, chunks=2)
        run = lambda cache, progress=None: evaluate_design_space(
            cluster_space[:3],
            methods=["first_principles"],
            mc_config=mc,
            cache=cache,
            pipeline_methods=True,
            progress=progress,
        )
        cold = ComponentCache(disk=DiskCache(tmp_path))
        cold_events: list[ProgressEvent] = []
        run(cold, cold_events.append)
        cold_prewarm = [
            e for e in cold_events if e.kind == CACHE_PREWARMED
        ]
        assert len(cold_prewarm) == 1
        assert cold_prewarm[0].warmed_entries == 0
        # A fresh in-memory cache over the same directory prewarms
        # every reference and method estimate the sweep needs.
        warm = ComponentCache(disk=DiskCache(tmp_path))
        warm_events: list[ProgressEvent] = []
        run(warm, warm_events.append)
        warm_prewarm = [
            e for e in warm_events if e.kind == CACHE_PREWARMED
        ]
        assert warm_prewarm[0].warmed_entries == 6  # 3 refs + 3 methods
        done = [e for e in warm_events if e.kind == POINT_DONE]
        assert done and all(e.cached for e in done)
        assert warm.misses == 0 and warm.estimate_misses == 0

    def test_estimates_publish_to_disk_as_points_finish(
        self, cluster_space, tmp_path
    ):
        # Streaming publication: after a pipelined run every system
        # estimate (reference and methods) is on disk — a co-running
        # shard polling the same directory would see them without
        # waiting for the sweep to finish.
        disk = DiskCache(tmp_path)
        cache = ComponentCache(disk=disk)
        evaluate_design_space(
            cluster_space[:2],
            methods=["first_principles", "sofr_only"],
            mc_config=MonteCarloConfig(trials=1_000, seed=1, chunks=2),
            cache=cache,
            pipeline_methods=True,
        )
        mc = MonteCarloConfig(trials=1_000, seed=1, chunks=2)
        for _label, system in cluster_space[:2]:
            ref_key = ComponentCache.estimate_key(
                "monte_carlo", system, mc, "monte_carlo"
            )
            assert disk.peek(ref_key) is not None
            method_key = ComponentCache.estimate_key(
                "sofr_only", system, mc, "monte_carlo"
            )
            assert disk.peek(method_key) is not None

    def test_co_running_shards_share_published_work(
        self, cluster_space, tmp_path
    ):
        # Sequentialized stand-in for two co-running shards: shard 0
        # publishes into the shared dir; shard 1's prewarm then skips
        # every system its sibling already finished plus the component
        # estimates they share.
        mc = MonteCarloConfig(trials=1_000, seed=1, chunks=2)
        kwargs = dict(
            methods=["sofr_only", "first_principles"],
            mc_config=mc,
            pipeline_methods=True,
        )
        shard0 = evaluate_design_space(
            cluster_space,
            shard=(0, 2),
            cache=ComponentCache(disk=DiskCache(tmp_path)),
            **kwargs,
        )
        shard1_cache = ComponentCache(disk=DiskCache(tmp_path))
        shard1 = evaluate_design_space(
            cluster_space,
            shard=(1, 2),
            cache=shard1_cache,
            **kwargs,
        )
        assert shard1_cache.disk.hits + shard1_cache.disk.writes > 0
        from repro.methods import merge_result_sets

        full = evaluate_design_space(
            cluster_space,
            cache=ComponentCache(disk=DiskCache(tmp_path)),
            **kwargs,
        )
        assert merge_result_sets([shard0, shard1]) == full

    def test_sharded_realloc_is_shard_deterministic(self, cluster_space):
        # Re-allocation redistributes within one invocation: a sharded
        # run is deterministic in its own right (same shard, any
        # workers/executor), which is the documented contract.
        kwargs = dict(
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(0, 2),
            pipeline_methods=True,
            reallocate_budget=True,
        )
        serial = evaluate_design_space(cluster_space, **kwargs)
        fanned = evaluate_design_space(cluster_space, workers=3, **kwargs)
        assert serial == fanned
        assert serial.shard == (0, 2)
