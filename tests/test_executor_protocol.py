"""Executor-backend protocol conformance suite (PR-8 tentpole).

The contract under test is the one ``docs/SCHEDULER.md`` states as the
engine's determinism invariant: every registered
:class:`~repro.methods.executors.ChunkExecutor` backend — thread,
process, and the remote TCP worker fleet — must produce ResultSets
whose canonical JSON bytes are identical to a serial single-worker run,
for any worker count, completion order, scheduling mode, or ledger
shard split. On top of the identity bar, this file covers the sealed
wire-frame codec (torn frames are loud, never silently wrong), the
PLAN_MISS hydration handshake, mid-batch worker death with failover to
survivors, and the CLI/knob resolution helpers (``--workers auto``,
address lists implying ``--executor remote``).

Loopback caveat: an in-process :class:`BackgroundWorker` shares the
coordinator's process-global plan cache, so the PLAN_MISS path is
exercised with a raw-socket request carrying an unknown key.
"""

import io
import json
import socket
import threading

import pytest

from repro.core import Component, MonteCarloConfig, StoppingRule, SystemModel
from repro.core import kernel as _kernel
from repro.errors import ConfigurationError, EstimationError, WireError
from repro.methods import (
    BudgetLedger,
    ChunkExecutor,
    RemoteExecutor,
    available_executors,
    evaluate_design_space,
    executor_name,
    get_executor,
    ledger_path,
    merge_result_sets,
    register_executor,
    unregister_executor,
)
from repro.methods.executors import (
    WIRE_SCHEMA,
    decode_frame,
    encode_frame,
    executor_from_cli,
    parse_address,
    parse_workers,
    read_frame,
    resolve_workers,
)
from repro.methods.worker import BackgroundWorker
from repro.service.wire import JobSpec
from repro.units import SECONDS_PER_DAY

#: Small fixed-budget config: cheap enough for the 1-CPU CI host, big
#: enough to fan several chunks per point through every backend.
SMALL_MC = MonteCarloConfig(trials=800, seed=11, chunks=4)

#: Adaptive config for the pipelined + reallocation variant.
ADAPTIVE_MC = MonteCarloConfig(
    trials=800,
    seed=7,
    chunks=4,
    stopping=StoppingRule(target_rel_stderr=0.05, max_trials=1600),
)


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8)
    ]


def canonical(result_set) -> str:
    """The byte-identity yardstick: canonical JSON of the ResultSet."""
    return json.dumps(result_set.to_dict(), sort_keys=True)


def serial_baseline(space, mc=SMALL_MC, **kwargs):
    return evaluate_design_space(
        space,
        methods=["sofr_only"],
        reference="monte_carlo",
        mc_config=mc,
        workers=1,
        executor="thread",
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Wire frame codec: the sealed-record discipline on a stream.
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip(self):
        record = {"op": "hello", "schema": WIRE_SCHEMA, "id": 3}
        assert decode_frame(encode_frame(record)) == record

    def test_frame_is_length_prefixed_and_newline_terminated(self):
        frame = encode_frame({"id": 1, "op": "hello"})
        assert frame == b'21:{"id":1,"op":"hello"}\n'

    def test_missing_newline_is_torn(self):
        whole = encode_frame({"op": "hello"})
        with pytest.raises(WireError, match="newline"):
            decode_frame(whole[:-1])

    def test_truncated_body_is_torn(self):
        # The peer died mid-write: declared length > delivered bytes.
        with pytest.raises(WireError, match="declared"):
            decode_frame(b'999:{"op":"hello"}\n')

    def test_missing_length_prefix_is_torn(self):
        with pytest.raises(WireError, match="length prefix"):
            decode_frame(b'{"op":"hello"}\n')

    def test_bad_length_prefix_is_torn(self):
        with pytest.raises(WireError, match="length prefix"):
            decode_frame(b'abc:{"op":"hello"}\n')

    def test_unparsable_body_is_torn(self):
        body = b"not json!!"
        with pytest.raises(WireError, match="unparsable"):
            decode_frame(b"%d:%s\n" % (len(body), body))

    def test_non_object_body_is_torn(self):
        body = b"[1,2,3]"
        with pytest.raises(WireError, match="JSON object"):
            decode_frame(b"%d:%s\n" % (len(body), body))

    def test_read_frame_clean_eof_is_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_read_frame_eof_mid_frame_is_torn(self):
        stream = io.BytesIO(encode_frame({"op": "hello"})[:-1])
        with pytest.raises(WireError):
            read_frame(stream)


# ---------------------------------------------------------------------------
# Knob parsing and the backend registry.
# ---------------------------------------------------------------------------


class TestWorkerKnobs:
    def test_parse_workers_integer(self):
        assert parse_workers("3") == 3

    def test_parse_workers_auto(self):
        assert parse_workers("AUTO") == "auto"

    def test_parse_workers_addresses(self):
        assert parse_workers("hostA:8421, hostB:8421") == (
            "hostA:8421",
            "hostB:8421",
        )

    def test_parse_workers_garbage_is_loud(self):
        with pytest.raises(ConfigurationError, match="--workers"):
            parse_workers("three")

    def test_parse_workers_bad_address_is_loud(self):
        with pytest.raises(ConfigurationError, match="host:port"):
            parse_workers("hostA:notaport,hostB:8421")

    def test_parse_address_rejects_missing_port(self):
        with pytest.raises(ConfigurationError, match="host:port"):
            parse_address("hostA")

    def test_resolve_workers_auto_asks_the_backend(self):
        import os

        backend = get_executor("thread")
        expected = os.cpu_count() or 1
        assert resolve_workers("auto", backend) == expected
        assert resolve_workers(None, backend) == expected

    def test_resolve_workers_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError, match="workers"):
            resolve_workers(0, get_executor("thread"))

    def test_resolve_workers_rejects_bool(self):
        with pytest.raises(ConfigurationError, match="workers"):
            resolve_workers(True, get_executor("thread"))

    def test_addresses_imply_remote_when_executor_unset(self):
        # `--workers host:port,...` with no --executor flag: remote.
        backend, workers = executor_from_cli(
            None, ("127.0.0.1:8421", "127.0.0.1:8422")
        )
        assert isinstance(backend, RemoteExecutor)
        assert workers == 2

    def test_executor_unset_defaults_to_thread(self):
        backend, workers = executor_from_cli(None, 3)
        assert executor_name(backend) == "thread"
        assert workers == 3

    def test_cli_fleet_selects_remote_backend(self):
        backend, workers = executor_from_cli(
            "remote", ("127.0.0.1:8421", "127.0.0.1:8422")
        )
        assert isinstance(backend, RemoteExecutor)
        assert backend.addresses == (
            ("127.0.0.1", 8421),
            ("127.0.0.1", 8422),
        )
        assert workers == 2

    def test_cli_fleet_with_local_executor_is_loud(self):
        with pytest.raises(ConfigurationError, match="implies"):
            executor_from_cli("process", ("127.0.0.1:8421",))

    def test_cli_remote_without_fleet_is_loud(self):
        with pytest.raises(ConfigurationError, match="addresses"):
            executor_from_cli("remote", "auto")

    def test_cli_auto_resolves_locally(self):
        import os

        backend, workers = executor_from_cli("thread", "auto")
        assert executor_name(backend) == "thread"
        assert workers == (os.cpu_count() or 1)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_executors()
        assert "thread" in names
        assert "process" in names
        assert "remote" in names

    def test_unknown_executor_is_loud(self, cluster_space):
        with pytest.raises(ConfigurationError, match="executor"):
            evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                executor="fiber",
            )

    def test_get_executor_passes_instances_through(self):
        backend = RemoteExecutor(["127.0.0.1:8421"])
        assert get_executor(backend) is backend

    def test_register_requires_chunk_executor(self):
        with pytest.raises(ConfigurationError, match="ChunkExecutor"):
            register_executor(object())

    def test_registration_legalizes_the_spelling(self, cluster_space):
        """A registered custom backend works everywhere by name."""

        class InlineExecutor(ChunkExecutor):
            name = "inline-test"
            shares_memory = True

            def auto_workers(self):
                return 1

            def pool(self, workers):
                from concurrent.futures import ThreadPoolExecutor

                return ThreadPoolExecutor(max_workers=1)

        register_executor(InlineExecutor())
        try:
            assert "inline-test" in available_executors()
            result = evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                workers=2,
                executor="inline-test",
            )
            assert canonical(result) == canonical(
                serial_baseline(cluster_space)
            )
        finally:
            unregister_executor("inline-test")
        assert "inline-test" not in available_executors()
        with pytest.raises(ConfigurationError, match="executor"):
            evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                executor="inline-test",
            )


# ---------------------------------------------------------------------------
# The determinism bar: every backend, byte-identical ResultSets.
# ---------------------------------------------------------------------------


class TestBackendConformance:
    @pytest.mark.parametrize("name", ("thread", "process", "remote"))
    def test_backend_matches_serial_bytes(self, cluster_space, name):
        baseline = canonical(serial_baseline(cluster_space))
        if name == "remote":
            with BackgroundWorker() as w1, BackgroundWorker() as w2:
                backend = RemoteExecutor([w1.address, w2.address])
                result = evaluate_design_space(
                    cluster_space,
                    methods=["sofr_only"],
                    mc_config=SMALL_MC,
                    workers="auto",
                    executor=backend,
                )
        else:
            result = evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                workers=2,
                executor=name,
            )
        assert canonical(result) == baseline

    def test_every_registered_backend_is_covered(self):
        """New backends must be added to the conformance matrix."""
        assert set(available_executors()) == {"thread", "process", "remote"}

    def test_remote_pipelined_reallocation_matches_serial(
        self, cluster_space
    ):
        kwargs = dict(
            pipeline_methods=True,
            reallocate_budget=True,
        )
        baseline = canonical(
            serial_baseline(cluster_space, mc=ADAPTIVE_MC, **kwargs)
        )
        with BackgroundWorker() as w1, BackgroundWorker() as w2:
            backend = RemoteExecutor([w1.address, w2.address])
            result = evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                reference="monte_carlo",
                mc_config=ADAPTIVE_MC,
                workers="auto",
                executor=backend,
                **kwargs,
            )
        assert canonical(result) == baseline

    def test_remote_ledger_fleet_matches_thread_fleet(
        self, cluster_space, day_profile, tmp_path
    ):
        """``+xshard`` shards on remote executors merge bit-identically."""
        rate = 2.0 / SECONDS_PER_DAY
        space = cluster_space + [
            (
                "C=100",
                SystemModel(
                    [Component("node", rate, day_profile, multiplicity=100)]
                ),
            )
        ]
        mc = MonteCarloConfig(
            trials=2_000,
            seed=3,
            chunks=4,
            stopping=StoppingRule(target_ci_halfwidth=250.0),
        )

        def run_fleet(executors, run_id):
            ledger_file = ledger_path(tmp_path, run_id)
            results = [None, None]
            errors = []

            def one(i):
                try:
                    results[i] = evaluate_design_space(
                        space,
                        methods=["first_principles"],
                        mc_config=mc,
                        shard=(i, 2),
                        workers="auto" if executors[i] != "thread" else 1,
                        executor=executors[i],
                        pipeline_methods=True,
                        reallocate_budget=True,
                        budget_ledger=BudgetLedger(
                            ledger_file,
                            shard=(i, 2),
                            poll_interval=0.01,
                            timeout=120.0,
                        ),
                    )
                except Exception as error:  # pragma: no cover - surfaced
                    errors.append(error)

            threads = [
                threading.Thread(target=one, args=(index,))
                for index in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            return merge_result_sets(results)

        with BackgroundWorker() as w1, BackgroundWorker() as w2:
            remote = RemoteExecutor([w1.address, w2.address])
            merged_remote = run_fleet((remote, remote), "remote-fleet")
        merged_thread = run_fleet(("thread", "thread"), "thread-fleet")
        assert canonical(merged_remote) == canonical(merged_thread)

    def test_workers_auto_accepted_by_the_engine(self, cluster_space):
        result = evaluate_design_space(
            cluster_space,
            methods=["sofr_only"],
            mc_config=SMALL_MC,
            workers="auto",
            executor="thread",
        )
        assert canonical(result) == canonical(serial_baseline(cluster_space))

    def test_job_spec_runs_on_a_remote_fleet(self, cluster_space):
        """The service path accepts a RemoteExecutor instance verbatim."""
        spec = JobSpec(
            space=tuple(cluster_space),
            methods=("sofr_only",),
            reference="monte_carlo",
            mc=SMALL_MC,
        )
        direct = spec.run(workers=1, executor="thread")
        with BackgroundWorker() as w1, BackgroundWorker() as w2:
            backend = RemoteExecutor([w1.address, w2.address])
            served = spec.run(workers=2, executor=backend)
        assert canonical(served) == canonical(direct)


# ---------------------------------------------------------------------------
# Failure discipline: dead workers, dead fleets, bad fleets.
# ---------------------------------------------------------------------------


class TestRemoteFailure:
    def test_mid_batch_death_fails_over_to_survivors(self, cluster_space):
        """A worker that dies mid-batch loses nothing: its outstanding
        tasks are resubmitted to the survivors and the bytes still
        match serial."""
        baseline = canonical(serial_baseline(cluster_space))
        with BackgroundWorker(fail_after=1) as doomed, BackgroundWorker() as survivor:
            backend = RemoteExecutor([doomed.address, survivor.address])
            result = evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                workers=2,
                executor=backend,
            )
        assert canonical(result) == baseline

    def test_whole_fleet_death_is_loud(self, cluster_space):
        with BackgroundWorker(fail_after=0) as doomed:
            backend = RemoteExecutor([doomed.address])
            with pytest.raises(EstimationError, match="repro-worker"):
                evaluate_design_space(
                    cluster_space,
                    methods=["sofr_only"],
                    mc_config=SMALL_MC,
                    workers=1,
                    executor=backend,
                )

    def test_unreachable_worker_is_loud(self, cluster_space):
        # An address nothing listens on: connect fails fast and loudly.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        backend = RemoteExecutor([f"127.0.0.1:{port}"])
        with pytest.raises(EstimationError, match="cannot reach"):
            evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                workers=1,
                executor=backend,
            )

    def test_remote_without_addresses_is_loud(self, cluster_space):
        with pytest.raises(ConfigurationError, match="addresses"):
            evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=SMALL_MC,
                workers=2,
                executor="remote",
            )


# ---------------------------------------------------------------------------
# Raw-socket protocol checks against a live worker daemon.
# ---------------------------------------------------------------------------


def worker_conversation(address, frames, *, handshake=True):
    """Open one raw connection, send frames, collect reply frames.

    Returns the decoded replies; a connection the worker dropped simply
    yields fewer replies than frames sent.
    """
    host, _, port = address.rpartition(":")
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        stream = sock.makefile("rb")
        replies = []
        if handshake:
            sock.sendall(
                encode_frame({"op": "hello", "schema": WIRE_SCHEMA, "id": 0})
            )
            replies.append(read_frame(stream))
        for frame in frames:
            sock.sendall(frame)
        # Half-close so the worker sees a clean EOF and hangs up once
        # it has answered everything (or dropped the connection).
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        while True:
            try:
                reply = read_frame(stream)
            except (WireError, OSError):
                break
            if reply is None:
                break
            replies.append(reply)
        return replies


class TestWorkerDaemonProtocol:
    def test_hello_reports_schema_and_capacity(self):
        with BackgroundWorker() as worker:
            replies = worker_conversation(worker.address, [])
        (hello,) = replies
        assert hello["schema"] == WIRE_SCHEMA
        assert hello["cpu_count"] >= 1
        assert isinstance(hello["pid"], int)

    def test_schema_mismatch_is_refused(self):
        with BackgroundWorker() as worker:
            replies = worker_conversation(
                worker.address,
                [encode_frame({"op": "hello", "schema": "bogus/v9", "id": 1})],
                handshake=False,
            )
        (refusal,) = replies
        assert refusal["op"] == "error"
        assert "schema mismatch" in refusal["error"]

    def test_torn_frame_drops_the_connection_without_reply(self):
        with BackgroundWorker() as worker:
            replies = worker_conversation(
                worker.address,
                [b'999:{"op":"hello"}\n'],  # declared 999, delivered 14
            )
        # Only the handshake reply arrives; the torn frame is answered
        # by a dropped connection, never a guessed-at record.
        assert len(replies) == 1

    def test_unknown_op_is_an_error_then_drop(self):
        with BackgroundWorker() as worker:
            replies = worker_conversation(
                worker.address,
                [encode_frame({"op": "transmogrify", "id": 7})],
            )
        assert len(replies) == 2
        assert replies[1]["op"] == "error"
        assert replies[1]["id"] == 7

    def test_plan_miss_round_trip(self):
        """A keyed batch with no shipped plan answers PLAN_MISS.

        The loopback worker shares the coordinator's plan cache, so the
        miss path needs a key that cannot be hydrated: the coordinator
        is then expected to resubmit with the plan attached.
        """
        with BackgroundWorker() as worker:
            replies = worker_conversation(
                worker.address,
                [
                    encode_frame(
                        {
                            "op": "plan-chunks",
                            "key": "no-such-plan-fingerprint",
                            "plan": None,
                            "jobs": [],
                            "id": 5,
                        }
                    )
                ],
            )
        assert len(replies) == 2
        miss = replies[1]
        assert miss["status"] == _kernel.PLAN_MISS
        assert miss["key"] == "no-such-plan-fingerprint"
        assert miss["id"] == 5
