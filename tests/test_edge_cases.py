"""Edge-case tests across modules: branches the main suites don't hit."""

import math

import numpy as np
import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    OutputEvent,
    SoftArchTimeline,
    SystemModel,
    monte_carlo_mttf,
    timeline_from_intensity,
)
from repro.core.montecarlo import _estimate_from_samples
from repro.core.softarch import _aggregate_blocks, _truncated_exp_mean_fraction
from repro.errors import ConfigurationError, EstimationError
from repro.masking import NestedProfile, PiecewiseProfile, busy_idle_profile
from repro.reliability.hazard import NestedHazard, PiecewiseHazard


class TestMonteCarloInternals:
    def test_mixed_finite_infinite_rejected(self):
        samples = np.array([1.0, np.inf, 2.0])
        with pytest.raises(EstimationError):
            _estimate_from_samples(samples, "test")

    def test_all_infinite_gives_infinite_estimate(self):
        est = _estimate_from_samples(np.full(5, np.inf), "test")
        assert math.isinf(est.mttf_seconds)
        assert est.trials == 5

    def test_single_sample_zero_stderr(self):
        est = _estimate_from_samples(np.array([3.0]), "test")
        assert est.std_error_seconds == 0.0

    def test_zero_mass_system(self):
        system = SystemModel(
            [Component("c", 1e-6, PiecewiseProfile.constant(0.0, 5.0))]
        )
        est = monte_carlo_mttf(system, MonteCarloConfig(trials=10))
        assert math.isinf(est.mttf_seconds)


class TestSoftArchInternals:
    def test_truncated_mean_fraction_limits(self):
        # Uniform limit at x -> 0, 1/x tail at x -> infinity.
        assert _truncated_exp_mean_fraction(1e-12) == pytest.approx(0.5)
        assert _truncated_exp_mean_fraction(1e4) == pytest.approx(1e-4)
        assert _truncated_exp_mean_fraction(1e6) == pytest.approx(1e-6)

    def test_truncated_mean_fraction_continuous_at_switch(self):
        below = _truncated_exp_mean_fraction(0.99e-5)
        above = _truncated_exp_mean_fraction(1.01e-5)
        assert below == pytest.approx(above, rel=1e-6)

    def test_aggregate_blocks_matches_enumeration(self):
        events = [
            OutputEvent(time=0.4, probability=0.01, mean_time=0.2),
            OutputEvent(time=1.0, probability=0.02, mean_time=0.7),
        ]
        reps = 50
        aggregated = _aggregate_blocks(events, 1.0, reps, offset=0.0)
        enumerated = []
        for k in range(reps):
            enumerated.extend(
                OutputEvent(
                    time=k + e.time,
                    probability=e.probability,
                    mean_time=k + e.mean_time,
                )
                for e in events
            )
        agg_timeline = SoftArchTimeline([aggregated], float(reps))
        enum_timeline = SoftArchTimeline(enumerated, float(reps))
        assert agg_timeline.iteration_failure_probability() == (
            pytest.approx(enum_timeline.iteration_failure_probability(),
                          rel=1e-12)
        )
        assert agg_timeline.mttf() == pytest.approx(
            enum_timeline.mttf(), rel=1e-9
        )

    def test_aggregate_blocks_empty(self):
        assert _aggregate_blocks([], 1.0, 10, 0.0) is None

    def test_aggregate_blocks_certain_failure(self):
        events = [OutputEvent(time=1.0, probability=1.0, mean_time=0.5)]
        aggregated = _aggregate_blocks(events, 1.0, 1000, offset=0.0)
        assert aggregated.probability == 1.0
        assert aggregated.mean_time == pytest.approx(0.5)

    def test_timeline_events_property_sorted(self):
        timeline = SoftArchTimeline(
            [
                OutputEvent(time=2.0, probability=0.1, mean_time=1.5),
                OutputEvent(time=1.0, probability=0.1, mean_time=0.5),
            ],
            10.0,
        )
        times = [e.time for e in timeline.events]
        assert times == sorted(times)


class TestNestedEdgeCases:
    def test_nested_hazard_segments_property(self):
        inner = PiecewiseHazard.from_segments([(1.0, 0.5)])
        nested = NestedHazard([(5.0, inner), (3.0, 0.2)])
        segments = nested.segments
        assert len(segments) == 2
        assert segments[0][0] == pytest.approx(5.0)

    def test_timeline_from_nested_zero_rate_segment(self):
        inner = PiecewiseProfile.constant(0.0, 1.0)
        nested = NestedProfile([(10.0, inner), (10.0, 0.5)])
        timeline = timeline_from_intensity(nested.to_hazard(0.1))
        # Only the second segment generates events.
        assert timeline.event_count >= 1
        assert all(e.time > 10.0 for e in timeline.events)

    def test_nested_profile_segments_accessor(self):
        inner = PiecewiseProfile.constant(1.0, 1.0)
        nested = NestedProfile([(2.0, inner)])
        assert len(nested.segments) == 1

    def test_system_merge_rejects_mismatched_nested(self):
        a = NestedProfile([(2.0, 1.0), (2.0, 0.0)])
        b = NestedProfile([(1.0, 1.0), (3.0, 0.0)])
        system = SystemModel(
            [Component("a", 1.0, a), Component("b", 1.0, b)]
        )
        with pytest.raises(ConfigurationError):
            system.combined_intensity()


class TestProfileEdgeCases:
    def test_dilation_validation(self):
        profile = busy_idle_profile(1.0, 2.0)
        from repro.errors import ProfileError

        with pytest.raises(ProfileError):
            profile.dilated(0.0)
        with pytest.raises(ProfileError):
            profile.dilated(-2.0)

    def test_value_at_rejects_out_of_range_nested(self):
        from repro.errors import ProfileError

        nested = NestedProfile([(2.0, 0.5)])
        with pytest.raises(ProfileError):
            nested.value_at(2.0)

    def test_busy_idle_profile_full_period_hazard(self):
        profile = busy_idle_profile(2.0, 2.0)
        hazard = profile.to_hazard(3.0)
        assert hazard.mass == pytest.approx(6.0)
