"""Property-based tests for the MTTF methods and profile algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Component,
    SystemModel,
    avf_mttf,
    exact_component_mttf,
    first_principles_mttf,
    softarch_component_mttf,
    sofr_mttf_from_values,
)
from repro.masking import PiecewiseProfile, or_combine
from repro.masking.compose import weighted_average_profile
from repro.reliability.series import sofr_mttf


@st.composite
def profiles(draw, max_segments=5):
    n = draw(st.integers(min_value=1, max_value=max_segments))
    durations = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=20.0),
            min_size=n, max_size=n,
        )
    )
    # Exact zero keeps masked segments; the positive branch floors at
    # 1e-6 so subnormal vulnerabilities can't overflow reciprocals.
    values = draw(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=1e-6, max_value=1.0),
            ),
            min_size=n, max_size=n,
        )
    )
    return PiecewiseProfile.from_segments(list(zip(durations, values)))


rates = st.floats(min_value=1e-8, max_value=2.0)


class TestProfileAlgebra:
    @given(profiles())
    def test_avf_in_unit_interval(self, profile):
        assert 0.0 <= profile.avf <= 1.0

    @given(profiles(), profiles())
    def test_or_combine_dominates(self, a, b):
        b_aligned = PiecewiseProfile(
            a.breakpoints, np.resize(b.values, a.values.size)
        )
        combined = or_combine([a, b_aligned])
        assert combined.avf >= max(a.avf, b_aligned.avf) - 1e-9
        assert combined.avf <= min(1.0, a.avf + b_aligned.avf) + 1e-9

    @given(profiles(), st.floats(min_value=0.01, max_value=0.99))
    def test_weighted_average_between(self, profile, weight):
        zero = PiecewiseProfile(
            profile.breakpoints, np.zeros_like(profile.values)
        )
        avg = weighted_average_profile(
            [profile, zero], [weight, 1.0 - weight]
        )
        assert avg.avf == pytest.approx(profile.avf * weight, rel=1e-9,
                                        abs=1e-12)

    @given(profiles(), st.floats(min_value=0.1, max_value=100.0))
    def test_dilation_preserves_avf(self, profile, factor):
        assert profile.dilated(factor).avf == pytest.approx(
            profile.avf, rel=1e-9, abs=1e-12
        )


class TestMethodRelations:
    @given(profiles(), rates)
    def test_softarch_equals_exact(self, profile, rate):
        exact = exact_component_mttf(rate, profile)
        softarch = softarch_component_mttf(rate, profile)
        if np.isinf(exact):
            assert np.isinf(softarch)
        else:
            assert softarch == pytest.approx(exact, rel=1e-6)

    @given(profiles(), rates)
    def test_avf_exact_in_small_hazard_limit(self, profile, rate):
        # Skip degenerate profiles whose vulnerable time underflows: the
        # scaled rate would overflow to infinity (correctly rejected by
        # the library).
        if profile.avf == 0 or profile.vulnerable_time < 1e-100:
            return
        tiny_rate = 1e-9 / profile.vulnerable_time
        exact = exact_component_mttf(tiny_rate, profile)
        approx = avf_mttf(tiny_rate, profile)
        assert approx == pytest.approx(exact, rel=1e-6)

    @settings(max_examples=40)
    @given(profiles(), rates, st.integers(min_value=2, max_value=1000))
    def test_system_mttf_below_component(self, profile, rate, count):
        # Note: E[min] >= E[X]/C is NOT a valid bound for non-exponential
        # lifetimes — that near-miss is precisely the SOFR fallacy the
        # paper dissects. The valid invariants are domination by the
        # single component and monotonicity in the component count.
        if profile.avf == 0:
            return
        single = exact_component_mttf(rate, profile)
        system = first_principles_mttf(
            SystemModel(
                [Component("c", rate, profile, multiplicity=count)]
            )
        ).mttf_seconds
        bigger = first_principles_mttf(
            SystemModel(
                [Component("c", rate, profile, multiplicity=2 * count)]
            )
        ).mttf_seconds
        assert system <= single * (1 + 1e-9)
        assert bigger <= system * (1 + 1e-9)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e6),
            min_size=1,
            max_size=6,
        )
    )
    def test_sofr_below_min_component(self, mttfs):
        combined = sofr_mttf(mttfs)
        assert combined <= min(mttfs) + 1e-9

    @given(
        st.floats(min_value=0.5, max_value=1e5),
        st.integers(min_value=1, max_value=100),
    )
    def test_sofr_identical_components(self, mttf, count):
        est = sofr_mttf_from_values([mttf], [count])
        assert est.mttf_seconds == pytest.approx(mttf / count, rel=1e-12)


class TestMonteCarloAgainstExact:
    @settings(max_examples=10, deadline=None)
    @given(profiles(), st.floats(min_value=0.001, max_value=0.5))
    def test_mc_within_confidence(self, profile, mass_target):
        # Random profile, hazard scaled to a moderate mass: the MC mean
        # must sit within 5 standard errors of the closed form.
        from repro.core import MonteCarloConfig, sample_component_ttf

        if profile.vulnerable_time <= 0:
            return
        rate = mass_target / profile.vulnerable_time
        # Subnormal vulnerable times overflow the rate to inf, which the
        # hazard constructor rightly rejects — not an MC property.
        if not np.isfinite(rate):
            return
        component = Component("c", rate, profile)
        exact = exact_component_mttf(rate, profile)
        samples = sample_component_ttf(
            component, MonteCarloConfig(trials=20_000, seed=17)
        )
        stderr = samples.std(ddof=1) / np.sqrt(samples.size)
        assert abs(samples.mean() - exact) < 5.5 * stderr
