"""Tests for vulnerability profiles (repro.masking.profile)."""

import math

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.masking import (
    NestedProfile,
    PiecewiseProfile,
    busy_idle_profile,
    from_cycle_mask,
)


class TestPiecewiseProfile:
    def test_avf_is_time_average(self):
        p = PiecewiseProfile.from_segments([(2.0, 1.0), (6.0, 0.0)])
        assert p.avf == pytest.approx(0.25)

    def test_fractional_values(self):
        p = PiecewiseProfile.from_segments([(1.0, 0.5), (1.0, 0.25)])
        assert p.avf == pytest.approx(0.375)

    def test_rejects_values_outside_unit_interval(self):
        with pytest.raises(ProfileError):
            PiecewiseProfile([0.0, 1.0], [1.5])
        with pytest.raises(ProfileError):
            PiecewiseProfile([0.0, 1.0], [-0.1])

    def test_value_at(self):
        p = PiecewiseProfile.from_segments([(2.0, 0.8), (2.0, 0.1)])
        assert float(p.value_at(1.0)) == pytest.approx(0.8)
        assert float(p.value_at(3.0)) == pytest.approx(0.1)

    def test_to_hazard_scales_by_rate(self):
        p = PiecewiseProfile.from_segments([(1.0, 1.0), (3.0, 0.0)])
        h = p.to_hazard(2.5)
        assert h.mass == pytest.approx(2.5)

    def test_to_hazard_rejects_negative_rate(self):
        p = PiecewiseProfile.constant(1.0, 1.0)
        with pytest.raises(ProfileError):
            p.to_hazard(-1.0)

    def test_constant_profile(self):
        p = PiecewiseProfile.constant(0.6, 10.0)
        assert p.avf == pytest.approx(0.6)
        assert p.period == pytest.approx(10.0)

    def test_tiled_preserves_avf(self):
        p = PiecewiseProfile.from_segments([(1.0, 1.0), (1.0, 0.0)])
        t = p.tiled(5)
        assert t.period == pytest.approx(5 * p.period)
        assert t.avf == pytest.approx(p.avf)


class TestBusyIdle:
    def test_avf_is_busy_fraction(self):
        p = busy_idle_profile(3.0, 12.0)
        assert p.avf == pytest.approx(0.25)

    def test_fully_busy_collapses_to_constant(self):
        p = busy_idle_profile(5.0, 5.0)
        assert p.avf == pytest.approx(1.0)
        assert p.segment_count == 1

    def test_busy_value_scaling(self):
        p = busy_idle_profile(2.0, 4.0, busy_value=0.5)
        assert p.avf == pytest.approx(0.25)

    def test_rejects_zero_busy(self):
        with pytest.raises(ProfileError):
            busy_idle_profile(0.0, 5.0)

    def test_rejects_busy_exceeding_period(self):
        with pytest.raises(ProfileError):
            busy_idle_profile(6.0, 5.0)


class TestFromCycleMask:
    def test_boolean_mask_rle(self):
        mask = np.array([1, 1, 0, 0, 0, 1], dtype=bool)
        p = from_cycle_mask(mask, 0.5)
        assert p.period == pytest.approx(3.0)
        assert p.avf == pytest.approx(0.5)
        assert p.segment_count == 3

    def test_fractional_mask(self):
        mask = np.array([0.5, 0.5, 1.0])
        p = from_cycle_mask(mask, 1.0)
        assert p.avf == pytest.approx(2.0 / 3.0)

    def test_all_equal_mask_single_segment(self):
        p = from_cycle_mask(np.ones(1000), 1e-9)
        assert p.segment_count == 1

    def test_compression_round_trip(self):
        rng = np.random.default_rng(7)
        mask = rng.random(500) < 0.3
        p = from_cycle_mask(mask, 1.0)
        cycles = np.arange(500) + 0.5
        np.testing.assert_allclose(p.value_at(cycles), mask.astype(float))

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            from_cycle_mask(np.array([]), 1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ProfileError):
            from_cycle_mask(np.array([2.0]), 1.0)

    def test_rejects_bad_cycle_time(self):
        with pytest.raises(ProfileError):
            from_cycle_mask(np.ones(3), 0.0)


class TestNestedProfile:
    def test_avf_mixes_segments(self):
        inner = PiecewiseProfile.from_segments([(1.0, 1.0), (1.0, 0.0)])
        nested = NestedProfile([(10.0, inner), (10.0, 0.0)])
        assert nested.avf == pytest.approx(0.25)

    def test_period_is_sum_of_durations(self):
        nested = NestedProfile([(3.0, 1.0), (7.0, 0.5)])
        assert nested.period == pytest.approx(10.0)

    def test_value_at_resolves_inner_cycles(self):
        inner = PiecewiseProfile.from_segments([(1.0, 1.0), (1.0, 0.0)])
        nested = NestedProfile([(10.0, inner), (5.0, 0.25)])
        # Third repetition of the inner profile, busy half.
        assert float(nested.value_at(4.5)) == pytest.approx(1.0)
        assert float(nested.value_at(5.5)) == pytest.approx(0.0)
        assert float(nested.value_at(12.0)) == pytest.approx(0.25)

    def test_value_at_vectorised(self):
        nested = NestedProfile([(2.0, 1.0), (2.0, 0.0)])
        np.testing.assert_allclose(
            nested.value_at(np.array([1.0, 3.0])), [1.0, 0.0]
        )

    def test_to_hazard_mass(self):
        inner = PiecewiseProfile.from_segments([(1.0, 1.0), (1.0, 0.0)])
        nested = NestedProfile([(10.0, inner)])
        h = nested.to_hazard(0.2)
        assert h.mass == pytest.approx(0.2 * 5.0)

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            NestedProfile([])

    def test_rejects_bad_duration(self):
        with pytest.raises(ProfileError):
            NestedProfile([(-1.0, 0.5)])

    def test_constant_segment_from_float(self):
        nested = NestedProfile([(4.0, 0.75)])
        assert nested.avf == pytest.approx(0.75)
