"""Tests for MachineConfig (Table 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.microarch import CacheSpec, FunctionalUnitSpec, MachineConfig, TlbSpec
from repro.microarch.isa import OpClass


class TestTable1Defaults:
    """The default configuration must be exactly the paper's Table 1."""

    def test_clock(self):
        assert MachineConfig.power4_like().clock_hz == pytest.approx(2.0e9)

    def test_widths(self):
        cfg = MachineConfig.power4_like()
        assert cfg.fetch_width == 8
        assert cfg.finish_width == 8
        assert cfg.dispatch_group_size == 5
        assert cfg.retire_groups_per_cycle == 1

    def test_functional_units(self):
        cfg = MachineConfig.power4_like()
        assert cfg.int_units.count == 2
        assert cfg.fp_units.count == 2
        assert cfg.ls_units.count == 2
        assert cfg.br_units.count == 1

    def test_latencies(self):
        cfg = MachineConfig.power4_like()
        assert cfg.latency_of(OpClass.INT_ALU) == 1
        assert cfg.latency_of(OpClass.INT_MUL) == 4
        assert cfg.latency_of(OpClass.INT_DIV) == 35
        assert cfg.latency_of(OpClass.FP_ADD) == 5
        assert cfg.latency_of(OpClass.FP_DIV) == 28

    def test_buffers(self):
        cfg = MachineConfig.power4_like()
        assert cfg.rob_entries == 150
        assert cfg.register_file_entries == 256
        assert cfg.int_register_entries == 80
        assert cfg.fp_register_entries == 72
        assert cfg.memory_queue_entries == 32

    def test_caches(self):
        cfg = MachineConfig.power4_like()
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l1d.associativity == 2
        assert cfg.l1i.size_bytes == 64 * 1024
        assert cfg.l1i.associativity == 1
        assert cfg.l2.size_bytes == 1024 * 1024
        assert cfg.l2.associativity == 4
        assert all(
            spec.line_bytes == 128 for spec in (cfg.l1d, cfg.l1i, cfg.l2)
        )

    def test_latencies_memory(self):
        cfg = MachineConfig.power4_like()
        assert cfg.l1d.latency == 1
        assert cfg.l2.latency == 10
        assert cfg.memory_latency == 77

    def test_tlbs(self):
        cfg = MachineConfig.power4_like()
        assert cfg.itlb.entries == 128
        assert cfg.dtlb.entries == 128

    def test_table1_rows_render(self):
        rows = MachineConfig.power4_like().table1_rows()
        rendered = dict(rows)
        assert rendered["Processor frequency"] == "2.0 GHz"
        assert rendered["Reorder buffer size"] == "150 entries"
        assert "2 integer" in rendered["Functional units"]


class TestOverridesAndValidation:
    def test_override(self):
        cfg = MachineConfig.power4_like(rob_entries=64)
        assert cfg.rob_entries == 64

    def test_cache_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CacheSpec("bad", 1000, 3, 128, 1)  # size not multiple
        with pytest.raises(ConfigurationError):
            CacheSpec("bad", 1024, 0, 128, 1)

    def test_n_sets(self):
        assert CacheSpec("c", 32 * 1024, 2, 128, 1).n_sets == 128

    def test_unit_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitSpec("int", 0)

    def test_tlb_validation(self):
        with pytest.raises(ConfigurationError):
            TlbSpec("t", 0)

    def test_rob_must_hold_group(self):
        with pytest.raises(ConfigurationError):
            MachineConfig.power4_like(rob_entries=3)

    def test_register_partitions_checked(self):
        with pytest.raises(ConfigurationError):
            MachineConfig.power4_like(register_file_entries=100)

    def test_unit_pool_lookup(self):
        cfg = MachineConfig.power4_like()
        assert cfg.unit_pool("fp").count == 2
        with pytest.raises(ConfigurationError):
            cfg.unit_pool("vector")
