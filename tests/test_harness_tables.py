"""Tests for result tables and figure rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import Table, render_series
from repro.harness.tables import percent


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2.5, "y")
        text = table.render()
        assert "Demo" in text
        assert "2.5" in text and "y" in text

    def test_markdown_shape(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2)
        md = table.render_markdown()
        assert "| a | b |" in md
        assert "|---|---|" in md

    def test_row_arity_checked(self):
        table = Table("t", ["a"])
        with pytest.raises(ConfigurationError):
            table.add_row(1, 2)

    def test_column_access(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == ["2", "4"]
        with pytest.raises(ConfigurationError):
            table.column("c")

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(1.234e-8)
        table.add_row(0.0)
        table.add_row(True)
        assert table.column("v") == ["1.234e-08", "0", "yes"]

    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            Table("t", [])

    def test_len(self):
        table = Table("t", ["a"])
        table.add_row(1)
        assert len(table) == 1

    def test_percent_helper(self):
        assert percent(0.123) == "+12.30%"
        assert percent(-0.01) == "-1.00%"


class TestRenderSeries:
    def test_bars_scale(self):
        text = render_series(
            "chart", ["a", "b"], {"s": [0.1, 0.5]}, width=10
        )
        assert "chart" in text
        assert text.count("#") >= 10  # the 0.5 bar is full width

    def test_negative_bars_marked(self):
        text = render_series("c", ["x"], {"s": [-0.2]})
        assert "-" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("c", ["x", "y"], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("c", ["x"], {})

    def test_all_zero_values(self):
        text = render_series("c", ["x"], {"s": [0.0]})
        assert "0.00%" in text
