"""Elastic ledger fleets: chaos schedules, adoption, join/leave (PR-10).

The acceptance bar for every injected schedule — voluntary leave,
SIGKILL mid-round, SIGKILL at a round boundary, pause-past-lease,
late join, join-after-finish — is the one ``docs/SCHEDULER.md`` sets:
the merged fleet output is byte-identical to the sequential
``--ledger-replay`` reproduction (and to the unsharded re-allocating
run), and the budget audit shows claimed <= freed.
"""

import threading

import pytest

import chaos
from repro.errors import ConfigurationError, EstimationError
from repro.methods import (
    BudgetLedger,
    LedgerState,
    ShardDeparted,
    merge_result_sets,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")

LEASE = 0.5


def assert_fleet_matches_oracles(results, ledger_file, count):
    """The chaos acceptance bar, shared by every schedule."""
    merged = merge_result_sets([r for r in results if r is not None])
    replayed = chaos.sequential_replay(ledger_file, count)
    assert merged == replayed, "fleet merge != sequential ledger replay"
    solo = chaos.unsharded_run()
    assert [c.reference for c in merged.comparisons] == [
        c.reference for c in solo.comparisons
    ], "fleet reference estimates != unsharded run"
    totals = LedgerState.scan(ledger_file, count).totals()
    assert totals["claimed_trials"] <= totals["freed_trials"]
    return merged


def run_thread_fleet(ledger_file, count, faults=None):
    """An in-process fleet: one thread per member, real ledger file."""
    faults = faults or {}
    results = [None] * count
    errors = [None] * count

    def member(slot):
        try:
            results[slot] = chaos.run_member_inline(
                ledger_file,
                slot,
                count,
                lease=LEASE,
                **faults.get(slot, {}),
            )
        except ShardDeparted:
            pass
        except Exception as error:  # pragma: no cover - surfaced below
            errors[slot] = error

    threads = [
        threading.Thread(target=member, args=(slot,))
        for slot in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(error is None for error in errors), errors
    return results


class TestVoluntaryLeave:
    def test_leave_before_first_barrier_is_adopted(self, tmp_path):
        ledger_file = tmp_path / "leave.ledger"
        results = run_thread_fleet(
            ledger_file, 3, faults={2: {"leave_after": 0}}
        )
        assert results[2] is None  # the leaver produced no artifact
        adopted = [
            s.shard[0] for r in results if r is not None
            for s in r.adopted
        ]
        assert adopted == [2]
        merged = assert_fleet_matches_oracles(results, ledger_file, 3)
        state = LedgerState.scan(ledger_file, 3)
        history = state.epoch_history()
        assert history[0] == (1, "shard-depart", 2, 0)
        assert ("shard-join", 2) in {
            (kind, slot) for _e, kind, slot, _g in history
        }
        assert state.epoch() == len(history) >= 2
        assert merged.labels == [f"C={c}" for c in chaos.CLUSTER_COUNTS]

    def test_leave_mid_protocol(self, tmp_path):
        # Slot 0 owns the straggler (global point 0), so it survives
        # past round 0; make it leave before round 1 instead.
        ledger_file = tmp_path / "leave-mid.ledger"
        results = run_thread_fleet(
            ledger_file, 2, faults={0: {"leave_after": 1}}
        )
        assert results[0] is None
        assert [s.shard[0] for s in results[1].adopted] == [0]
        assert_fleet_matches_oracles(results, ledger_file, 2)


class TestCrashSchedules:
    def test_sigkill_mid_round_torn_block_is_completed(self, tmp_path):
        # Member 1 SIGKILLs itself halfway through publishing round 0:
        # opens on the file, no sealing barrier. The adopter must
        # complete the torn block (dedup keeps the dead member's
        # records; determinism makes the completion identical).
        ledger_file = tmp_path / "torn.ledger"
        members = [
            chaos.launch_member(
                ledger_file,
                slot,
                3,
                tmp_path,
                extra=(
                    ["--torn-round", "0"]
                    if slot == 1
                    else ["--lease", str(LEASE)]
                ),
            )
            for slot in range(3)
        ]
        results, codes = chaos.collect_fleet(members)
        assert codes[1] == -9  # SIGKILL
        assert codes[0] == 0 and codes[2] == 0
        assert results[1] is None
        adopted = [
            s.shard[0] for r in results if r is not None
            for s in r.adopted
        ]
        assert adopted == [1]
        assert_fleet_matches_oracles(results, ledger_file, 3)

    def test_sigkill_at_round_boundary(self, tmp_path):
        # Member 0 — the straggler's owner — dies right after sealing
        # round 0; its open straggler point transfers wholesale.
        ledger_file = tmp_path / "boundary.ledger"
        members = [
            chaos.launch_member(
                ledger_file,
                slot,
                2,
                tmp_path,
                extra=(
                    ["--die-after", "0"]
                    if slot == 0
                    else ["--lease", str(LEASE)]
                ),
            )
            for slot in range(2)
        ]
        results, codes = chaos.collect_fleet(members)
        assert codes[0] == -9 and codes[1] == 0
        assert [s.shard[0] for s in results[1].adopted] == [0]
        assert_fleet_matches_oracles(results, ledger_file, 2)


class TestPausePastLease:
    def test_zombie_resumes_with_identical_bits(self, tmp_path):
        # Member 0 freezes (heartbeat stopped) past the lease before
        # publishing round 1; a survivor departs + adopts it. The
        # zombie then resumes, republishes identical records (dedup
        # absorbs them), and writes its own artifact — so slot 0
        # appears twice, byte-identical, and merge tolerates it.
        ledger_file = tmp_path / "zombie.ledger"
        members = [
            chaos.launch_member(
                ledger_file,
                slot,
                2,
                tmp_path,
                extra=(
                    ["--pause-at", "1", "--pause-for", str(6 * LEASE),
                     "--lease", str(LEASE)]
                    if slot == 0
                    else ["--lease", str(LEASE)]
                ),
            )
            for slot in range(2)
        ]
        results, codes = chaos.collect_fleet(members)
        assert codes == [0, 0]
        assert results[0] is not None and results[1] is not None
        state = LedgerState.scan(ledger_file, 2)
        assert state.depart_event(0) is not None
        assert state.depart_event(0)["reason"] == "lease-expired"
        adopted = [s.shard[0] for s in results[1].adopted]
        assert adopted == [0]
        # Zombie's own slot-0 set == the adopter's slot-0 set, bit for
        # bit — the false-positive-departure safety property.
        assert results[0].comparisons == (
            results[1].adopted[0].comparisons
        )
        assert_fleet_matches_oracles(results, ledger_file, 2)


class TestJoin:
    def test_join_replaces_never_started_member(self, tmp_path):
        # A 3-slot fleet launches with slot 2 missing entirely. The
        # survivors depart it after the lease; a replacement then
        # joins mid-run. Adopter and joiner may both produce slot 2 —
        # identical bits either way.
        ledger_file = tmp_path / "join.ledger"
        members = [
            chaos.launch_member(
                ledger_file, slot, 3, tmp_path,
                extra=["--lease", str(LEASE)],
            )
            for slot in range(2)
        ]
        chaos.wait_for_depart(ledger_file, 2, 3)
        joiner = chaos.launch_member(
            ledger_file, 2, 3, tmp_path,
            extra=["--join", "--lease", str(LEASE)],
        )
        results, codes = chaos.collect_fleet([*members, joiner])
        assert codes[:2] == [0, 0]
        # The joiner races the survivors' in-process adopter: either
        # it joined live (artifact written) or the adopter finished
        # the whole run first and the join was refused loudly — both
        # are documented outcomes, and the survivors' adopted points
        # cover slot 2 either way.
        if codes[2] == 0:
            assert results[2] is not None  # the joiner wrote slot 2
        else:
            assert codes[2] == chaos.JOIN_REFUSED
            assert results[2] is None
        assert_fleet_matches_oracles(results, ledger_file, 3)

    def test_join_finished_run_is_refused_loudly(self, tmp_path):
        ledger_file = tmp_path / "finished.ledger"
        results = run_thread_fleet(ledger_file, 2)
        assert all(r is not None for r in results)
        with pytest.raises(ConfigurationError, match="finished"):
            chaos.run_member_inline(ledger_file, 1, 2, join=True)
        # ... and the right spelling is a replay, which still works.
        assert_fleet_matches_oracles(results, ledger_file, 2)

    def test_join_config_mismatch_is_refused(self, tmp_path):
        ledger_file = tmp_path / "mismatch.ledger"
        handle = BudgetLedger(ledger_file, shard=(0, 2))
        handle.open_run("token-a", ["first_principles"], "monte_carlo")
        taker = BudgetLedger(ledger_file, shard=(0, 2), takeover=True)
        with pytest.raises(ConfigurationError, match="configuration"):
            taker.open_run(
                "token-b", ["first_principles"], "monte_carlo"
            )


class TestLonelinessRegression:
    def test_timeout_names_missing_shards_and_epoch(self, tmp_path):
        # Regression: the lone-shard timeout must say *who* is missing
        # and the membership epoch it last saw, not just that time ran
        # out — and keep the "co-running" phrasing the PR-5 tests and
        # docs grep for.
        ledger_file = tmp_path / "lonely.ledger"
        with pytest.raises(EstimationError) as excinfo:
            chaos.run_member_inline(
                ledger_file, 0, 3, timeout=0.4
            )
        message = str(excinfo.value)
        assert "shard(s) 1, 2" in message
        assert "round 0" in message
        assert "epoch 0" in message
        assert "co-running" in message

    def test_timeout_message_reflects_membership_epoch(self, tmp_path):
        ledger_file = tmp_path / "lonely-epoch.ledger"
        # A recorded depart record moves the epoch the timeout
        # reports (no hello needed: membership records stand alone).
        BudgetLedger(ledger_file, shard=(1, 2)).depart(
            0, reason="leave"
        )
        with pytest.raises(EstimationError, match="epoch 1"):
            chaos.run_member_inline(ledger_file, 0, 2, timeout=0.4)


class TestResultSetAdoption:
    def test_adopted_sets_round_trip_through_json(self, tmp_path):
        ledger_file = tmp_path / "roundtrip.ledger"
        results = run_thread_fleet(
            ledger_file, 2, faults={0: {"leave_after": 1}}
        )
        survivor = results[1]
        assert survivor.adopted
        path = tmp_path / "survivor.json"
        survivor.to_json(path)
        from repro.methods import ResultSet

        loaded = ResultSet.from_json(path)
        assert loaded == survivor
        assert merge_result_sets([loaded]) == merge_result_sets(
            [survivor]
        )
