"""Tests for workload phase analysis (repro.workloads.phases)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads import (
    detect_phases,
    longest_phase,
    phase_summary,
    spec_benchmark,
    synthesize_trace,
    windowed_utilization,
)
from repro.microarch import simulate


class TestWindowedUtilization:
    def test_means_per_window(self):
        mask = np.array([1, 1, 0, 0, 1, 0])
        np.testing.assert_allclose(
            windowed_utilization(mask, 2), [1.0, 0.0, 0.5]
        )

    def test_partial_window_dropped(self):
        mask = np.array([1, 1, 1, 0, 0])
        np.testing.assert_allclose(
            windowed_utilization(mask, 2), [1.0, 0.5]
        )

    def test_validation(self):
        with pytest.raises(TraceError):
            windowed_utilization(np.array([]), 2)
        with pytest.raises(TraceError):
            windowed_utilization(np.ones(4), 0)
        with pytest.raises(TraceError):
            windowed_utilization(np.ones(3), 10)


class TestDetectPhases:
    def test_two_level_signal(self):
        signal = np.concatenate([np.full(50, 0.9), np.full(30, 0.1)])
        phases = detect_phases(signal, threshold=0.2)
        assert len(phases) == 2
        assert phases[0].length == 50
        assert phases[0].level == pytest.approx(0.9)
        assert phases[1].level == pytest.approx(0.1)

    def test_flat_signal_single_phase(self):
        phases = detect_phases(np.full(100, 0.4))
        assert len(phases) == 1
        assert phases[0].length == 100

    def test_noise_below_threshold_ignored(self):
        rng = np.random.default_rng(0)
        signal = 0.5 + 0.01 * rng.standard_normal(200)
        assert len(detect_phases(signal, threshold=0.1)) == 1

    def test_min_length_respected(self):
        signal = np.array([0.9, 0.1, 0.9, 0.1] * 10)
        phases = detect_phases(signal, threshold=0.2, min_length=8)
        for phase in phases[:-1]:
            assert phase.length >= 8

    def test_phases_partition_signal(self):
        signal = np.concatenate(
            [np.full(20, 0.8), np.full(40, 0.2), np.full(10, 0.9)]
        )
        phases = detect_phases(signal, threshold=0.2)
        assert phases[0].start == 0
        assert phases[-1].end == signal.size
        for a, b in zip(phases, phases[1:]):
            assert a.end == b.start

    def test_validation(self):
        with pytest.raises(TraceError):
            detect_phases(np.array([]))
        with pytest.raises(TraceError):
            detect_phases(np.ones(5), threshold=0.0)
        with pytest.raises(TraceError):
            detect_phases(np.ones(5), min_length=0)


class TestLongestPhase:
    def test_selects_longest(self):
        signal = np.concatenate([np.full(10, 0.9), np.full(50, 0.1)])
        phases = detect_phases(signal, threshold=0.3)
        assert longest_phase(phases).level == pytest.approx(0.1)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            longest_phase([])


class TestPhaseSummary:
    def test_structured_mask(self):
        mask = np.concatenate([np.ones(4000), np.zeros(4000)])
        summary = phase_summary(mask, window=200)
        assert summary.has_phase_structure
        assert summary.longest_phase_cycles == pytest.approx(4000, abs=400)
        assert summary.mean_level == pytest.approx(0.5)

    def test_flat_mask_no_structure(self):
        summary = phase_summary(np.full(2000, 0.3), window=100)
        assert not summary.has_phase_structure
        assert summary.n_phases == 1

    def test_phased_benchmark_shows_structure(self):
        # `art` is configured with strong phase modulation; its memory
        # behaviour shifts between phases and the decode/LS utilisation
        # follows.
        profile = spec_benchmark("art")
        assert profile.phase_length > 0
        trace = synthesize_trace(profile, 24_000, seed=2)
        result = simulate(trace, workload="art")
        summary = phase_summary(
            result.masking_trace.mask("ls_unit"),
            window=max(result.masking_trace.n_cycles // 60, 1),
            threshold=0.05,
        )
        assert summary.n_phases >= 2
