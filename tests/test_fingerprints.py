"""Content-fingerprint tests (profiles, components, systems).

Fingerprints are the cache-key identity of the estimation caches: equal
content must hash equal regardless of object identity, and any content
change must produce a different digest (which is what invalidates stale
disk-cache entries).
"""

import numpy as np

from repro.core.system import Component, SystemModel
from repro.masking.profile import (
    NestedProfile,
    PiecewiseProfile,
    busy_idle_profile,
)
from repro.units import SECONDS_PER_DAY


class TestProfileFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
        b = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
        assert a is not b
        assert a.fingerprint == b.fingerprint

    def test_changed_values_change_fingerprint(self):
        a = PiecewiseProfile([0.0, 1.0, 2.0], [0.5, 0.0])
        b = PiecewiseProfile([0.0, 1.0, 2.0], [0.6, 0.0])
        assert a.fingerprint != b.fingerprint

    def test_changed_breakpoints_change_fingerprint(self):
        a = PiecewiseProfile([0.0, 1.0, 2.0], [0.5, 0.0])
        b = PiecewiseProfile([0.0, 1.5, 2.0], [0.5, 0.0])
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_is_stable_across_calls(self):
        a = busy_idle_profile(3600.0, 7200.0)
        assert a.fingerprint == a.fingerprint

    def test_nested_profile_fingerprint(self):
        inner_a = PiecewiseProfile([0.0, 1.0, 2.0], [1.0, 0.0])
        inner_b = PiecewiseProfile([0.0, 1.0, 2.0], [1.0, 0.0])
        n1 = NestedProfile([(10.0, inner_a), (10.0, 0.25)])
        n2 = NestedProfile([(10.0, inner_b), (10.0, 0.25)])
        n3 = NestedProfile([(10.0, inner_a), (10.0, 0.5)])
        assert n1.fingerprint == n2.fingerprint
        assert n1.fingerprint != n3.fingerprint

    def test_nested_differs_from_piecewise(self):
        flat = PiecewiseProfile([0.0, 10.0], [0.5])
        nested = NestedProfile([(10.0, 0.5)])
        assert flat.fingerprint != nested.fingerprint

    def test_mask_roundtrip_preserves_fingerprint(self):
        from repro.masking.profile import from_cycle_mask

        mask = np.array([1.0, 1.0, 0.0, 0.0, 0.5])
        a = from_cycle_mask(mask, 2.0)
        b = from_cycle_mask(mask.copy(), 2.0)
        assert a.fingerprint == b.fingerprint


class TestComponentFingerprint:
    def test_name_and_multiplicity_excluded(self, day_profile):
        a = Component("alpha", 1e-6, day_profile)
        b = Component("beta", 1e-6, day_profile, multiplicity=500)
        assert a.content_fingerprint == b.content_fingerprint

    def test_rate_included(self, day_profile):
        a = Component("x", 1e-6, day_profile)
        b = Component("x", 2e-6, day_profile)
        assert a.content_fingerprint != b.content_fingerprint

    def test_profile_content_included(self, day_profile):
        other = busy_idle_profile(0.25 * SECONDS_PER_DAY, SECONDS_PER_DAY)
        a = Component("x", 1e-6, day_profile)
        b = Component("x", 1e-6, other)
        assert a.content_fingerprint != b.content_fingerprint


class TestSystemFingerprint:
    def test_multiplicity_included(self, day_profile):
        a = SystemModel([Component("n", 1e-6, day_profile)])
        b = SystemModel(
            [Component("n", 1e-6, day_profile, multiplicity=2)]
        )
        assert a.content_fingerprint != b.content_fingerprint

    def test_equal_content_equal_fingerprint(self, day_profile):
        rebuilt = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
        a = SystemModel([Component("n", 1e-6, day_profile)])
        b = SystemModel([Component("n", 1e-6, rebuilt)])
        assert a.content_fingerprint == b.content_fingerprint

    def test_component_order_included(self, day_profile, fractional_profile):
        x = Component("x", 1e-6, day_profile)
        y = Component("y", 1e-6, fractional_profile)
        assert (
            SystemModel([x, y]).content_fingerprint
            != SystemModel([y, x]).content_fingerprint
        )

    def test_cached_on_instance(self, day_profile):
        system = SystemModel([Component("n", 1e-6, day_profile)])
        assert system.content_fingerprint is system.content_fingerprint
