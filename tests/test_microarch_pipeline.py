"""Tests for the pipeline timing model: ordering and resource invariants."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.microarch import InstructionRecord, MachineConfig, OpClass, simulate
from repro.microarch.pipeline import PipelineModel
from repro.workloads import spec_benchmark, synthesize_trace


def alu(dest, srcs=(), pc=0x1000):
    return InstructionRecord(OpClass.INT_ALU, dest=dest, srcs=srcs, pc=pc)


def run(trace, **overrides):
    cfg = MachineConfig.power4_like(**overrides)
    return PipelineModel(cfg).run(trace)


class TestBasicOrdering:
    def test_single_instruction(self):
        schedule = run([alu(1)])
        assert schedule.retire[0] > schedule.complete[0] >= schedule.issue[0]
        assert schedule.issue[0] > schedule.dispatch[0] >= schedule.fetch[0]

    def test_dependent_chain_serialises(self):
        trace = [alu(1), alu(2, (1,)), alu(3, (2,)), alu(4, (3,))]
        schedule = run(trace)
        for i in range(1, 4):
            assert schedule.issue[i] >= schedule.complete[i - 1]

    def test_independent_ops_overlap(self):
        trace = [alu(i + 1) for i in range(2)]
        schedule = run(trace)
        # Two int units: both issue in the same cycle.
        assert schedule.issue[0] == schedule.issue[1]

    def test_retirement_in_order(self):
        profile = spec_benchmark("gzip")
        trace = synthesize_trace(profile, 2000, seed=3)
        schedule = run(trace)
        retire = schedule.retire
        assert all(a <= b for a, b in zip(retire, retire[1:]))

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            run([])


class TestFunctionalUnits:
    def test_int_divide_blocks_unit(self):
        # Two divides on 2 int units issue together; a third waits for a
        # unit to free (35-cycle block).
        div = lambda d: InstructionRecord(OpClass.INT_DIV, dest=d)
        trace = [div(1), div(2), div(3)]
        schedule = run(trace)
        assert schedule.issue[2] >= schedule.issue[0] + 35

    def test_pipelined_fp_accepts_back_to_back(self):
        fp = lambda d: InstructionRecord(OpClass.FP_ADD, dest=d)
        trace = [fp(40), fp(41), fp(42), fp(43)]
        schedule = run(trace)
        # 2 FP units, pipelined: ops 3 and 4 issue one cycle after 1 and 2.
        assert schedule.issue[2] == schedule.issue[0] + 1
        assert schedule.issue[3] == schedule.issue[1] + 1

    def test_latencies_respected(self):
        trace = [
            InstructionRecord(OpClass.INT_MUL, dest=1),
            InstructionRecord(OpClass.FP_DIV, dest=40),
        ]
        schedule = run(trace)
        assert schedule.complete[0] == schedule.issue[0] + 4
        assert schedule.complete[1] == schedule.issue[1] + 28


class TestStructuralLimits:
    def test_rob_backpressure(self):
        # A long-latency head instruction with a full ROB behind it
        # stalls dispatch of younger instructions.
        head = InstructionRecord(OpClass.INT_DIV, dest=1)
        body = [alu(2, (1,), pc=0x1000 + 4 * i) for i in range(200)]
        schedule = run([head] + body, rob_entries=16)
        # Instruction 16 cannot dispatch until the head's group retires.
        assert schedule.dispatch[30] > schedule.retire[0]

    def test_dispatch_group_limit(self):
        trace = [alu(i % 30 + 1, pc=0x1000 + 4 * i) for i in range(10)]
        schedule = run(trace)
        # 10 ALU ops = 2 groups minimum -> at least 2 distinct dispatch cycles.
        assert len(set(schedule.dispatch)) >= 2

    def test_memory_queue_limits_outstanding_loads(self):
        loads = [
            InstructionRecord(
                OpClass.LOAD, dest=(i % 30) + 1, srcs=(1,),
                pc=0x1000 + 4 * i, mem_addr=0x4000_0000 + 4096 * i,
            )
            for i in range(64)
        ]
        tight = run(loads, memory_queue_entries=4)
        loose = run(loads, memory_queue_entries=64)
        assert tight.total_cycles > loose.total_cycles

    def test_mispredict_stalls_fetch(self):
        # A mispredicted branch delays the fetch of following instructions.
        branch = InstructionRecord(
            OpClass.BRANCH, srcs=(1,), pc=0x2000, taken=True
        )
        after = alu(2, pc=0x3000)
        schedule = run([alu(1), branch, after])
        assert schedule.fetch[2] >= schedule.complete[1]


class TestMaskingOutputs:
    def test_unit_intervals_recorded(self):
        trace = [alu(1), InstructionRecord(OpClass.FP_ADD, dest=40)]
        schedule = run(trace)
        assert len(schedule.unit_intervals["int"]) == 1
        assert len(schedule.unit_intervals["fp"]) == 1
        start, end = schedule.unit_intervals["fp"][0]
        assert end - start == 5  # FP latency

    def test_live_intervals_from_read(self):
        # def r1, a long gap of unrelated work, read r1 much later:
        # r1's value sits live in the register file across the gap.
        padding = [alu(3 + i % 20, pc=0x1000 + 4 * i) for i in range(40)]
        trace = [alu(1)] + padding + [alu(2, (1,))]
        schedule = run(trace)
        live_regs = [reg for reg, _s, _e in schedule.live_intervals]
        assert 1 in live_regs

    def test_dead_value_not_live(self):
        # The first definition of r1 is overwritten without ever being
        # read; only the second value (read after a gap) is live.
        padding = [alu(3 + i % 20, pc=0x2000 + 4 * i) for i in range(40)]
        trace = [alu(1), alu(1)] + padding + [alu(2, (1,))]
        schedule = run(trace)
        r1_intervals = [
            (s, e) for reg, s, e in schedule.live_intervals if reg == 1
        ]
        assert len(r1_intervals) == 1


class TestSimulateDriver:
    def test_masks_cover_all_components(self):
        trace = synthesize_trace(spec_benchmark("gzip"), 3000, seed=1)
        result = simulate(trace, workload="gzip")
        names = set(result.masking_trace.component_names)
        assert {
            "int_unit",
            "fp_unit",
            "ls_unit",
            "br_unit",
            "decode_unit",
            "register_file",
        } <= names

    def test_masks_in_unit_range(self):
        trace = synthesize_trace(spec_benchmark("swim"), 3000, seed=1)
        result = simulate(trace)
        for name in result.masking_trace.component_names:
            mask = result.masking_trace.mask(name)
            assert np.all((mask >= 0) & (mask <= 1))

    def test_deterministic(self):
        trace = synthesize_trace(spec_benchmark("art"), 2000, seed=9)
        a = simulate(trace).stats.cycles
        b = simulate(trace).stats.cycles
        assert a == b

    def test_fp_benchmark_uses_fp_unit(self):
        trace = synthesize_trace(spec_benchmark("swim"), 5000, seed=1)
        result = simulate(trace)
        assert result.masking_trace.avf("fp_unit") > 0.1

    def test_int_benchmark_leaves_fp_nearly_idle(self):
        # Only the preamble's few global-register initialisations touch
        # the FP unit in an integer benchmark.
        trace = synthesize_trace(spec_benchmark("gzip"), 5000, seed=1)
        result = simulate(trace)
        assert result.masking_trace.avf("fp_unit") < 0.01

    def test_ipc_positive_and_bounded(self):
        trace = synthesize_trace(spec_benchmark("crafty"), 5000, seed=1)
        result = simulate(trace)
        assert 0.0 < result.ipc <= 8.0
