"""Chunked Monte-Carlo reduction tests (merge correctness, determinism)."""

import math

import numpy as np
import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    SystemModel,
    chunk_configs,
    estimate_from_moments,
    merge_moments,
    moments_from_samples,
    monte_carlo_component_mttf,
    monte_carlo_mttf,
    sample_system_ttf,
    system_chunk_moments,
)
from repro.errors import EstimationError
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def system(day_profile):
    return SystemModel(
        [Component("n", 2.0 / SECONDS_PER_DAY, day_profile,
                   multiplicity=8)]
    )


class TestChunkConfigs:
    def test_trials_partition_exactly(self):
        config = MonteCarloConfig(trials=10_007, seed=5, chunks=8)
        chunks = chunk_configs(config)
        assert len(chunks) == 8
        assert sum(c.trials for c in chunks) == 10_007
        assert all(c.chunks == 1 for c in chunks)

    def test_seeds_deterministic_and_distinct(self):
        config = MonteCarloConfig(trials=1_000, seed=5, chunks=4)
        a = [c.seed for c in chunk_configs(config)]
        b = [c.seed for c in chunk_configs(config)]
        assert a == b
        assert len(set(a)) == 4

    def test_parent_seed_changes_chunk_seeds(self):
        a = chunk_configs(MonteCarloConfig(trials=100, seed=1, chunks=2))
        b = chunk_configs(MonteCarloConfig(trials=100, seed=2, chunks=2))
        assert [c.seed for c in a] != [c.seed for c in b]

    def test_chunks_clamped_to_trials(self):
        config = MonteCarloConfig(trials=3, seed=0, chunks=10)
        chunks = chunk_configs(config)
        assert len(chunks) == 3
        assert all(c.trials == 1 for c in chunks)

    def test_invalid_chunks_rejected(self):
        with pytest.raises(EstimationError, match="chunks"):
            MonteCarloConfig(trials=10, chunks=0)


class TestMomentMerge:
    def test_merged_moments_match_whole_array(self, system):
        config = MonteCarloConfig(trials=9_001, seed=11, chunks=7)
        chunks = chunk_configs(config)
        merged = merge_moments(
            [system_chunk_moments(system, c) for c in chunks]
        )
        samples = np.concatenate(
            [sample_system_ttf(system, c) for c in chunks]
        )
        assert merged.count == samples.size
        assert merged.mean == pytest.approx(
            float(samples.mean()), rel=1e-12
        )
        # Merged stderr must equal the ddof=1 stderr of the pooled
        # samples — the merge is exact, not an approximation.
        est = estimate_from_moments(merged, "mc")
        expected = float(
            samples.std(ddof=1) / math.sqrt(samples.size)
        )
        assert est.std_error_seconds == pytest.approx(
            expected, rel=1e-9
        )

    def test_merge_is_order_deterministic(self, system):
        chunks = chunk_configs(
            MonteCarloConfig(trials=4_000, seed=2, chunks=4)
        )
        parts = [system_chunk_moments(system, c) for c in chunks]
        assert merge_moments(parts) == merge_moments(list(parts))

    def test_empty_merge_rejected(self):
        with pytest.raises(EstimationError, match="no sample moments"):
            merge_moments([])

    def test_all_infinite_chunks_merge_to_infinite(self):
        inf = moments_from_samples(np.full(10, np.inf))
        merged = merge_moments([inf, inf])
        assert math.isinf(merged.mean) and merged.count == 20
        est = estimate_from_moments(merged, "mc")
        assert math.isinf(est.mttf_seconds)

    def test_mixed_infinite_rejected(self):
        finite = moments_from_samples(np.array([1.0, 2.0]))
        inf = moments_from_samples(np.full(2, np.inf))
        with pytest.raises(EstimationError, match="mixed"):
            merge_moments([finite, inf])


class TestChunkedEstimates:
    def test_chunked_estimate_reproducible(self, system):
        config = MonteCarloConfig(trials=6_000, seed=9, chunks=6)
        assert monte_carlo_mttf(system, config) == monte_carlo_mttf(
            system, config
        )

    def test_chunked_component_matches_system_single(self, day_profile):
        comp = Component("n", 1.0 / SECONDS_PER_DAY, day_profile)
        config = MonteCarloConfig(trials=4_000, seed=3, chunks=4)
        a = monte_carlo_component_mttf(comp, config)
        b = monte_carlo_mttf(SystemModel([comp]), config)
        assert a.mttf_seconds == b.mttf_seconds

    def test_chunked_agrees_with_unchunked_within_noise(self, system):
        mono = monte_carlo_mttf(
            system, MonteCarloConfig(trials=40_000, seed=1)
        )
        chunked = monte_carlo_mttf(
            system, MonteCarloConfig(trials=40_000, seed=1, chunks=8)
        )
        tolerance = 6 * math.hypot(
            mono.std_error_seconds, chunked.std_error_seconds
        )
        assert abs(
            mono.mttf_seconds - chunked.mttf_seconds
        ) <= tolerance

    def test_zero_rate_chunked_is_infinite(self, day_profile):
        comp = Component("never", 0.0, day_profile)
        est = monte_carlo_component_mttf(
            comp, MonteCarloConfig(trials=100, seed=0, chunks=4)
        )
        assert math.isinf(est.mttf_seconds)
