"""Smoke coverage of every SPEC benchmark profile through the pipeline.

The paper simulates all 21 benchmarks; this suite synthesizes and
simulates a short window of each, asserting the statistics every
experiment depends on are sane and suitably diverse.
"""

import numpy as np
import pytest

from repro.microarch import MachineConfig, simulate
from repro.workloads import (
    SPEC_FP_NAMES,
    SPEC_INT_NAMES,
    spec_benchmark,
    synthesize_trace,
)

WINDOW = 4_000


@pytest.fixture(scope="module")
def all_results():
    config = MachineConfig.power4_like()
    results = {}
    for name in (*SPEC_INT_NAMES, *SPEC_FP_NAMES):
        trace = synthesize_trace(spec_benchmark(name), WINDOW, seed=1)
        results[name] = simulate(trace, config, workload=name)
    return results


class TestAllBenchmarks:
    def test_all_21_simulate(self, all_results):
        assert len(all_results) == 21

    def test_ipc_sane_everywhere(self, all_results):
        for name, result in all_results.items():
            assert 0.05 < result.ipc < 8.0, name

    def test_masks_well_formed(self, all_results):
        for name, result in all_results.items():
            for comp in result.masking_trace.component_names:
                mask = result.masking_trace.mask(comp)
                assert mask.size == result.masking_trace.n_cycles
                assert np.all((mask >= 0) & (mask <= 1)), (name, comp)

    def test_fp_benchmarks_exercise_fp_unit(self, all_results):
        for name in SPEC_FP_NAMES:
            avf = all_results[name].masking_trace.avf("fp_unit")
            assert avf > 0.02, name

    def test_int_benchmarks_skip_fp_unit(self, all_results):
        for name in SPEC_INT_NAMES:
            avf = all_results[name].masking_trace.avf("fp_unit")
            assert avf < 0.02, name

    def test_register_file_liveness_positive(self, all_results):
        for name, result in all_results.items():
            assert result.masking_trace.avf("register_file") > 0.005, name

    def test_utilisation_diversity(self, all_results):
        # The AVF/SOFR experiments rely on benchmarks differing: the
        # spread of int-unit AVFs across the suite must be substantial.
        int_avfs = [
            r.masking_trace.avf("int_unit") for r in all_results.values()
        ]
        assert max(int_avfs) > 2.5 * min(int_avfs)

    def test_memory_behaviour_diversity(self, all_results):
        mcf = all_results["mcf"].stats
        swim = all_results["swim"].stats
        mcf_rate = mcf.l1d_misses / max(mcf.loads + mcf.stores, 1)
        swim_rate = swim.l1d_misses / max(swim.loads + swim.stores, 1)
        # Pointer-chasing mcf misses far more than prefetched swim.
        assert mcf_rate > 2 * swim_rate
