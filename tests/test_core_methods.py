"""Tests for the AVF step, SOFR step, and first-principles methods."""

import math

import numpy as np
import pytest

from repro.core import (
    Component,
    SystemModel,
    avf_mttf,
    avf_sofr_mttf,
    avf_step,
    derated_failure_rate,
    exact_component_mttf,
    exact_system_process,
    first_principles_mttf,
    sofr_mttf_from_components,
    sofr_mttf_from_values,
)
from repro.errors import ConfigurationError, EstimationError
from repro.masking import NestedProfile, PiecewiseProfile, busy_idle_profile
from repro.analytical.busy_idle import busy_idle_mttf_closed_form


class TestAvfStep:
    def test_formula(self, day_profile):
        lam = 2e-6
        assert avf_mttf(lam, day_profile) == pytest.approx(
            1.0 / (lam * 0.5)
        )

    def test_never_vulnerable_is_infinite(self):
        p = PiecewiseProfile.constant(0.0, 10.0)
        assert math.isinf(avf_mttf(1.0, p))

    def test_zero_rate_is_infinite(self, day_profile):
        assert math.isinf(avf_mttf(0.0, day_profile))

    def test_rejects_negative_rate(self, day_profile):
        with pytest.raises(EstimationError):
            avf_mttf(-1.0, day_profile)

    def test_avf_step_estimate_labelled(self, day_profile):
        comp = Component("c", 1e-6, day_profile)
        est = avf_step(comp)
        assert est.method == "avf"

    def test_derated_rate(self, day_profile):
        comp = Component("c", 4e-6, day_profile)
        assert derated_failure_rate(comp) == pytest.approx(2e-6)

    def test_derated_rate_zero_when_masked(self):
        comp = Component("c", 1.0, PiecewiseProfile.constant(0.0, 1.0))
        assert derated_failure_rate(comp) == 0.0


class TestFirstPrinciples:
    def test_matches_paper_closed_form(self):
        lam, busy, period = 0.4, 2.0, 9.0
        profile = busy_idle_profile(busy, period)
        assert exact_component_mttf(lam, profile) == pytest.approx(
            busy_idle_mttf_closed_form(lam, busy, period), rel=1e-12
        )

    def test_always_vulnerable_is_exponential(self):
        lam = 0.123
        profile = PiecewiseProfile.constant(1.0, 5.0)
        assert exact_component_mttf(lam, profile) == pytest.approx(1 / lam)

    def test_system_process_mass(self, day_profile):
        comp = Component("c", 1e-5, day_profile, multiplicity=100)
        system = SystemModel([comp])
        process = exact_system_process(system)
        assert process.mass_per_period == pytest.approx(
            100 * 1e-5 * day_profile.vulnerable_time
        )

    def test_system_mttf_scales_inversely_at_small_mass(self, day_profile):
        # In the SOFR-valid regime doubling C halves the MTTF.
        lam = 1e-9
        m1 = first_principles_mttf(
            SystemModel([Component("c", lam, day_profile, multiplicity=10)])
        ).mttf_seconds
        m2 = first_principles_mttf(
            SystemModel([Component("c", lam, day_profile, multiplicity=20)])
        ).mttf_seconds
        assert m1 / m2 == pytest.approx(2.0, rel=1e-3)

    def test_heterogeneous_components_merge(self, day_profile):
        night = PiecewiseProfile.from_segments(
            [(43200.0, 0.0), (43200.0, 1.0)]
        )
        system = SystemModel(
            [
                Component("day", 1e-6, day_profile),
                Component("night", 1e-6, night),
            ]
        )
        # Complementary busy windows: combined hazard is constant 1e-6.
        assert first_principles_mttf(system).mttf_seconds == pytest.approx(
            1e6, rel=1e-9
        )


class TestSofrStep:
    def test_values_with_multiplicity(self):
        est = sofr_mttf_from_values([100.0], [4])
        assert est.mttf_seconds == pytest.approx(25.0)

    def test_component_callback(self, day_profile):
        system = SystemModel(
            [Component("a", 1e-6, day_profile, multiplicity=2)]
        )
        est = sofr_mttf_from_components(system, lambda c: 50.0)
        assert est.mttf_seconds == pytest.approx(25.0)

    def test_avf_sofr_pipeline(self, day_profile):
        lam = 1e-6
        system = SystemModel(
            [
                Component("a", lam, day_profile),
                Component("b", lam, day_profile),
            ]
        )
        est = avf_sofr_mttf(system)
        expected = 1.0 / (2 * lam * 0.5)
        assert est.mttf_seconds == pytest.approx(expected)
        assert est.method == "avf+sofr"

    def test_avf_sofr_exact_in_valid_regime(self, day_profile):
        # λL → 0 and small C: AVF+SOFR must agree with first principles
        # (the paper's Section 5.1 situation).
        lam = 1e-12
        system = SystemModel(
            [Component("a", lam, day_profile, multiplicity=4)]
        )
        approx = avf_sofr_mttf(system).mttf_seconds
        exact = first_principles_mttf(system).mttf_seconds
        assert approx == pytest.approx(exact, rel=1e-4)

    def test_avf_sofr_breaks_at_large_mass(self, day_profile):
        # λL large: the discrepancy the paper warns about appears.
        lam = 2.0 / 86400.0  # two raw errors per day on average
        system = SystemModel(
            [Component("a", lam, day_profile, multiplicity=1000)]
        )
        approx = avf_sofr_mttf(system).mttf_seconds
        exact = first_principles_mttf(system).mttf_seconds
        assert abs(approx - exact) / exact > 0.10


class TestSystemModel:
    def test_component_count(self, day_profile):
        system = SystemModel(
            [
                Component("a", 1e-6, day_profile, multiplicity=3),
                Component("b", 1e-6, day_profile),
            ]
        )
        assert system.component_count == 4

    def test_rejects_duplicate_names(self, day_profile):
        with pytest.raises(ConfigurationError):
            SystemModel(
                [
                    Component("a", 1e-6, day_profile),
                    Component("a", 2e-6, day_profile),
                ]
            )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SystemModel([])

    def test_rejects_negative_rate(self, day_profile):
        with pytest.raises(ConfigurationError):
            Component("a", -1e-6, day_profile)

    def test_rejects_zero_multiplicity(self, day_profile):
        with pytest.raises(ConfigurationError):
            Component("a", 1e-6, day_profile, multiplicity=0)

    def test_lambda_l(self, day_profile):
        comp = Component("a", 2e-6, day_profile)
        assert comp.lambda_l == pytest.approx(2e-6 * 86400.0)

    def test_nested_systems_merge(self):
        inner = PiecewiseProfile.from_segments([(0.5, 1.0), (0.5, 0.0)])
        nested = NestedProfile([(100.0, inner), (100.0, 0.1)])
        system = SystemModel(
            [
                Component("a", 1e-4, nested),
                Component("b", 2e-4, nested),
            ]
        )
        combined = system.combined_intensity()
        assert combined.mass == pytest.approx(
            (1e-4 + 2e-4) * nested.vulnerable_time, rel=1e-9
        )

    def test_mixed_profile_types_rejected(self, day_profile):
        nested = NestedProfile([(86400.0, 0.5)])
        system = SystemModel(
            [
                Component("a", 1e-6, day_profile),
                Component("b", 1e-6, nested),
            ]
        )
        with pytest.raises(ConfigurationError):
            system.combined_intensity()
