"""Tests for the SoftArch method (Section 5.4)."""

import math

import pytest

from repro.core import (
    Component,
    OutputEvent,
    SoftArchTimeline,
    SystemModel,
    exact_component_mttf,
    first_principles_mttf,
    softarch_component_mttf,
    softarch_mttf,
    timeline_from_intensity,
)
from repro.errors import EstimationError
from repro.masking import NestedProfile, PiecewiseProfile, busy_idle_profile


class TestTimeline:
    def test_single_event_geometric(self):
        # One event with probability q at the end of each iteration of
        # length L: MTTF = t + L(1-q)/q with mean time t.
        q, period = 0.25, 10.0
        timeline = SoftArchTimeline(
            [OutputEvent(time=10.0, probability=q, mean_time=5.0)], period
        )
        assert timeline.mttf() == pytest.approx(5.0 + period * (1 - q) / q)
        assert timeline.iteration_failure_probability() == pytest.approx(q)

    def test_no_events_never_fails(self):
        timeline = SoftArchTimeline([], 5.0)
        assert math.isinf(timeline.mttf())

    def test_certain_event(self):
        timeline = SoftArchTimeline(
            [OutputEvent(time=1.0, probability=1.0, mean_time=0.5)], 2.0
        )
        assert timeline.mttf() == pytest.approx(0.5)

    def test_event_ordering_enforced_by_sort(self):
        events = [
            OutputEvent(time=8.0, probability=0.5, mean_time=7.0),
            OutputEvent(time=2.0, probability=0.5, mean_time=1.0),
        ]
        timeline = SoftArchTimeline(events, 10.0)
        # First failure dominated by the earlier event.
        assert timeline.events[0].time == 2.0

    def test_rejects_event_outside_period(self):
        with pytest.raises(EstimationError):
            SoftArchTimeline(
                [OutputEvent(time=11.0, probability=0.5, mean_time=10.5)],
                10.0,
            )

    def test_rejects_bad_probability(self):
        with pytest.raises(EstimationError):
            OutputEvent(time=1.0, probability=1.5, mean_time=0.5)

    def test_rejects_mean_after_event(self):
        with pytest.raises(EstimationError):
            OutputEvent(time=1.0, probability=0.5, mean_time=2.0)


class TestAgainstExact:
    """Section 5.4: SoftArch matches Monte Carlo/first principles closely."""

    def test_busy_idle_component_exact(self):
        lam = 4e-5
        profile = busy_idle_profile(30_000.0, 86_400.0)
        sa = softarch_component_mttf(lam, profile)
        exact = exact_component_mttf(lam, profile)
        assert sa == pytest.approx(exact, rel=1e-9)

    def test_fractional_component_exact(self, fractional_profile):
        lam = 0.01
        sa = softarch_component_mttf(lam, fractional_profile)
        exact = exact_component_mttf(lam, fractional_profile)
        assert sa == pytest.approx(exact, rel=1e-9)

    def test_large_hazard_component(self):
        # Even at huge λL (accelerated test) SoftArch stays exact.
        lam = 1e-3
        profile = busy_idle_profile(43_200.0, 86_400.0)
        sa = softarch_component_mttf(lam, profile)
        exact = exact_component_mttf(lam, profile)
        assert sa == pytest.approx(exact, rel=1e-9)

    def test_system_with_multiplicity(self, day_profile):
        system = SystemModel(
            [Component("c", 1e-5, day_profile, multiplicity=5000)]
        )
        sa = softarch_mttf(system).mttf_seconds
        exact = first_principles_mttf(system).mttf_seconds
        assert sa == pytest.approx(exact, rel=1e-6)

    def test_heterogeneous_system(self, day_profile):
        other = PiecewiseProfile.from_segments(
            [(21_600.0, 0.2), (64_800.0, 0.9)]
        )
        system = SystemModel(
            [
                Component("a", 2e-5, day_profile),
                Component("b", 3e-5, other),
            ]
        )
        sa = softarch_mttf(system).mttf_seconds
        exact = first_principles_mttf(system).mttf_seconds
        assert sa == pytest.approx(exact, rel=1e-6)

    def test_nested_profile_with_aggregation(self):
        # Inner cycle repeated ~4e7 times: exercises block aggregation.
        inner = PiecewiseProfile.from_segments([(5e-4, 1.0), (5e-4, 0.0)])
        nested = NestedProfile([(43_200.0, inner), (43_200.0, 0.0)])
        lam = 1e-5
        sa = softarch_component_mttf(lam, nested)
        exact = exact_component_mttf(lam, nested)
        assert sa == pytest.approx(exact, rel=1e-6)

    def test_zero_rate_infinite(self, day_profile):
        assert math.isinf(softarch_component_mttf(0.0, day_profile))

    def test_rejects_negative_rate(self, day_profile):
        with pytest.raises(EstimationError):
            softarch_component_mttf(-1.0, day_profile)


class TestTimelineFromIntensity:
    def test_event_per_vulnerable_segment(self, day_profile):
        timeline = timeline_from_intensity(day_profile.to_hazard(1e-5))
        assert timeline.event_count == 1  # one busy segment per day

    def test_rejects_unknown_intensity_type(self):
        with pytest.raises(EstimationError):
            timeline_from_intensity(object())
