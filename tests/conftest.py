"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.masking import PiecewiseProfile, busy_idle_profile
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def day_profile() -> PiecewiseProfile:
    """The paper's `day` workload: 24h loop, busy half the time."""
    return busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)


@pytest.fixture
def fractional_profile() -> PiecewiseProfile:
    """A profile with fractional (register-liveness-like) vulnerability."""
    return PiecewiseProfile.from_segments(
        [(10.0, 0.8), (5.0, 0.25), (15.0, 0.0), (20.0, 0.5)]
    )
