"""Tests for profile composition (repro.masking.compose)."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.masking import PiecewiseProfile, or_combine
from repro.masking.compose import concatenate_profiles, weighted_average_profile


class TestOrCombine:
    def test_binary_or(self):
        a = PiecewiseProfile.from_segments([(1.0, 1.0), (3.0, 0.0)])
        b = PiecewiseProfile.from_segments([(2.0, 0.0), (2.0, 1.0)])
        c = or_combine([a, b])
        np.testing.assert_allclose(
            c.value_at(np.array([0.5, 1.5, 2.5, 3.5])), [1.0, 0.0, 1.0, 1.0]
        )

    def test_fractional_or(self):
        a = PiecewiseProfile.constant(0.5, 4.0)
        b = PiecewiseProfile.constant(0.5, 4.0)
        c = or_combine([a, b])
        assert c.avf == pytest.approx(0.75)

    def test_result_bounds(self):
        a = PiecewiseProfile.from_segments([(1.0, 0.3), (1.0, 0.9)])
        b = PiecewiseProfile.from_segments([(0.5, 0.8), (1.5, 0.1)])
        c = or_combine([a, b])
        mids = np.array([0.25, 0.75, 1.25, 1.75])
        va, vb, vc = a.value_at(mids), b.value_at(mids), c.value_at(mids)
        assert np.all(vc >= np.maximum(va, vb) - 1e-12)
        assert np.all(vc <= 1.0 + 1e-12)

    def test_single_profile_identity(self):
        a = PiecewiseProfile.from_segments([(1.0, 0.4), (1.0, 0.0)])
        c = or_combine([a])
        assert c.avf == pytest.approx(a.avf)

    def test_rejects_period_mismatch(self):
        a = PiecewiseProfile.constant(1.0, 1.0)
        b = PiecewiseProfile.constant(1.0, 2.0)
        with pytest.raises(ProfileError):
            or_combine([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            or_combine([])


class TestConcatenate:
    def test_combined_workload_structure(self):
        # Two "benchmarks" in a 24h loop (the paper's `combined`).
        bench_a = PiecewiseProfile.from_segments([(1e-3, 1.0), (1e-3, 0.0)])
        bench_b = PiecewiseProfile.from_segments([(1e-3, 0.25), (1e-3, 0.75)])
        day = concatenate_profiles([(43200.0, bench_a), (43200.0, bench_b)])
        assert day.period == pytest.approx(86400.0)
        assert day.avf == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)


class TestWeightedAverage:
    def test_register_file_banks(self):
        int_bank = PiecewiseProfile.constant(1.0, 2.0)
        fp_bank = PiecewiseProfile.constant(0.0, 2.0)
        avg = weighted_average_profile([int_bank, fp_bank], [80, 176])
        assert avg.avf == pytest.approx(80 / 256)

    def test_weights_normalised(self):
        a = PiecewiseProfile.constant(1.0, 1.0)
        b = PiecewiseProfile.constant(0.5, 1.0)
        avg1 = weighted_average_profile([a, b], [1, 1])
        avg2 = weighted_average_profile([a, b], [10, 10])
        assert avg1.avf == pytest.approx(avg2.avf)

    def test_rejects_bad_weights(self):
        a = PiecewiseProfile.constant(1.0, 1.0)
        with pytest.raises(ProfileError):
            weighted_average_profile([a], [-1.0])
        with pytest.raises(ProfileError):
            weighted_average_profile([a], [0.0])

    def test_rejects_length_mismatch(self):
        a = PiecewiseProfile.constant(1.0, 1.0)
        with pytest.raises(ProfileError):
            weighted_average_profile([a], [1.0, 2.0])
