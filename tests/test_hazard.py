"""Tests for the cyclic hazard machinery (repro.reliability.hazard)."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.errors import ProfileError
from repro.reliability.hazard import (
    NestedHazard,
    PiecewiseHazard,
    constant_hazard,
    merge_piecewise,
)


def brute_force_cumulative(hazard, t, n=200_001):
    """Numerical Λ(t) by trapezoidal integration of the rate function."""
    taus = np.linspace(0, t, n)
    period = hazard.period
    local = np.mod(taus, period)
    local = np.where(local >= period, 0.0, local)
    if isinstance(hazard, PiecewiseHazard):
        rates = hazard.rate_at(np.clip(local, 0, period * (1 - 1e-15)))
    else:  # pragma: no cover - helper generality
        raise NotImplementedError
    return np.trapezoid(rates, taus)


class TestPiecewiseConstruction:
    def test_from_segments(self):
        h = PiecewiseHazard.from_segments([(2.0, 0.5), (3.0, 0.0)])
        assert h.period == pytest.approx(5.0)
        assert h.mass == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            PiecewiseHazard.from_segments([])

    def test_rejects_negative_rate(self):
        with pytest.raises(ProfileError):
            PiecewiseHazard([0.0, 1.0], [-0.1])

    def test_rejects_unsorted_breakpoints(self):
        with pytest.raises(ProfileError):
            PiecewiseHazard([0.0, 2.0, 1.0], [0.5, 0.5])

    def test_rejects_nonzero_start(self):
        with pytest.raises(ProfileError):
            PiecewiseHazard([1.0, 2.0], [0.5])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ProfileError):
            PiecewiseHazard([0.0, 1.0, 2.0], [0.5])

    def test_rejects_nonfinite(self):
        with pytest.raises(ProfileError):
            PiecewiseHazard([0.0, np.inf], [0.5])


class TestCumulative:
    def test_piecewise_cumulative_at_breakpoints(self):
        h = PiecewiseHazard.from_segments([(2.0, 1.0), (2.0, 0.0), (1.0, 3.0)])
        assert float(h.cumulative(0.0)) == 0.0
        assert float(h.cumulative(2.0)) == pytest.approx(2.0)
        assert float(h.cumulative(4.0)) == pytest.approx(2.0)
        assert float(h.cumulative(5.0)) == pytest.approx(5.0)

    def test_cumulative_mid_segment(self):
        h = PiecewiseHazard.from_segments([(2.0, 1.5), (2.0, 0.5)])
        assert float(h.cumulative(1.0)) == pytest.approx(1.5)
        assert float(h.cumulative(3.0)) == pytest.approx(3.0 + 0.5)

    def test_extended_adds_period_mass(self):
        h = PiecewiseHazard.from_segments([(1.0, 2.0), (1.0, 0.0)])
        assert float(h.cumulative_extended(5.5)) == pytest.approx(
            2 * 2.0 + float(h.cumulative(1.5))
        )

    def test_extended_rejects_negative(self):
        h = constant_hazard(1.0)
        with pytest.raises(ProfileError):
            h.cumulative_extended(-0.1)

    def test_out_of_range_rejected(self):
        h = constant_hazard(1.0, period=2.0)
        with pytest.raises(ProfileError):
            h.cumulative(2.5)


class TestInversion:
    def test_round_trip_piecewise(self):
        h = PiecewiseHazard.from_segments(
            [(2.0, 1.0), (3.0, 0.0), (1.0, 2.5)]
        )
        for u in [0.01, 0.5, 1.99, 2.0, 3.0, h.mass]:
            tau = float(h.invert(u))
            assert float(h.cumulative(tau)) == pytest.approx(u, abs=1e-12)

    def test_inversion_skips_zero_rate_segments(self):
        h = PiecewiseHazard.from_segments([(1.0, 1.0), (5.0, 0.0), (1.0, 1.0)])
        # Hazard beyond mass 1.0 accrues only after the idle gap.
        tau = float(h.invert(1.0 + 1e-9))
        assert tau == pytest.approx(6.0, abs=1e-6)

    def test_extended_round_trip(self):
        h = PiecewiseHazard.from_segments([(1.0, 0.5), (1.0, 0.0)])
        u = np.array([0.2, 0.5, 0.7, 1.0, 2.3])
        t = h.invert_extended(u)
        np.testing.assert_allclose(h.cumulative_extended(t), u, atol=1e-12)

    def test_exact_multiple_of_mass_lands_in_previous_period(self):
        h = PiecewiseHazard.from_segments([(1.0, 1.0), (1.0, 0.0)])
        # Λ reaches exactly 1.0 at t=1.0 (end of first busy interval).
        assert float(h.invert_extended(1.0)) == pytest.approx(1.0)
        # And exactly 2.0 at t=3.0.
        assert float(h.invert_extended(2.0)) == pytest.approx(3.0)

    def test_zero_mass_returns_inf(self):
        h = constant_hazard(0.0, period=3.0)
        assert np.isinf(h.invert_extended(np.array([0.5]))).all()

    def test_invert_rejects_nonpositive(self):
        h = constant_hazard(1.0)
        with pytest.raises(ProfileError):
            h.invert(0.0)


class TestSurvivalIntegral:
    def test_constant_hazard_closed_form(self):
        lam, period = 0.7, 4.0
        h = constant_hazard(lam, period)
        expected = (1 - math.exp(-lam * period)) / lam
        assert h.survival_integral(period) == pytest.approx(expected)

    def test_matches_quadrature(self):
        h = PiecewiseHazard.from_segments(
            [(1.0, 0.3), (2.0, 0.0), (0.5, 2.0), (1.5, 0.1)]
        )

        def integrand(t):
            return math.exp(-float(h.cumulative(t)))

        value, _ = integrate.quad(integrand, 0, h.period, limit=200)
        assert h.survival_integral(h.period) == pytest.approx(value, rel=1e-9)

    def test_partial_integral(self):
        h = PiecewiseHazard.from_segments([(2.0, 0.5), (2.0, 0.0)])

        def integrand(t):
            return math.exp(-float(h.cumulative(t)))

        for x in [0.5, 1.0, 2.5, 3.7]:
            value, _ = integrate.quad(integrand, 0, x, limit=100)
            assert h.survival_integral(x) == pytest.approx(value, rel=1e-9)

    def test_weighted_integral_matches_quadrature(self):
        h = PiecewiseHazard.from_segments(
            [(1.0, 0.8), (1.0, 0.0), (2.0, 0.25)]
        )

        def integrand(t):
            return t * math.exp(-float(h.cumulative(t)))

        value, _ = integrate.quad(integrand, 0, h.period, limit=200)
        assert h.time_weighted_survival_integral(h.period) == pytest.approx(
            value, rel=1e-9
        )

    def test_zero_upper_limit(self):
        h = constant_hazard(1.0)
        assert h.survival_integral(0.0) == 0.0
        assert h.time_weighted_survival_integral(0.0) == 0.0


class TestScalingAndTiling:
    def test_scaled_mass(self):
        h = PiecewiseHazard.from_segments([(1.0, 0.5), (1.0, 0.25)])
        assert h.scaled(4.0).mass == pytest.approx(4.0 * h.mass)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ProfileError):
            constant_hazard(1.0).scaled(-1.0)

    def test_tiled_preserves_shape(self):
        h = PiecewiseHazard.from_segments([(1.0, 1.0), (1.0, 0.0)])
        t3 = h.tiled(3)
        assert t3.period == pytest.approx(3 * h.period)
        assert t3.mass == pytest.approx(3 * h.mass)
        taus = np.array([0.5, 1.5, 2.5, 3.5, 4.5, 5.5])
        np.testing.assert_allclose(
            t3.rate_at(taus), [1.0, 0.0, 1.0, 0.0, 1.0, 0.0]
        )

    def test_tile_count_validated(self):
        with pytest.raises(ProfileError):
            constant_hazard(1.0).tiled(0)


class TestMerge:
    def test_merge_adds_rates(self):
        a = PiecewiseHazard.from_segments([(1.0, 1.0), (1.0, 0.0)])
        b = PiecewiseHazard.from_segments([(0.5, 0.0), (1.5, 2.0)])
        m = merge_piecewise([a, b])
        assert m.mass == pytest.approx(a.mass + b.mass)
        np.testing.assert_allclose(
            m.rate_at(np.array([0.25, 0.75, 1.25])), [1.0, 3.0, 2.0]
        )

    def test_merge_rejects_period_mismatch(self):
        a = constant_hazard(1.0, period=1.0)
        b = constant_hazard(1.0, period=2.0)
        with pytest.raises(ProfileError):
            merge_piecewise([a, b])

    def test_merge_single(self):
        a = constant_hazard(0.5, period=2.0)
        assert merge_piecewise([a]).mass == pytest.approx(a.mass)

    def test_merge_empty_rejected(self):
        with pytest.raises(ProfileError):
            merge_piecewise([])


class TestNestedHazard:
    @pytest.fixture
    def nested(self):
        inner_a = PiecewiseHazard.from_segments([(1.0, 2.0), (1.0, 0.0)])
        inner_b = PiecewiseHazard.from_segments([(0.5, 0.4), (0.5, 0.1)])
        return NestedHazard([(10.0, inner_a), (5.0, inner_b)])

    def test_period_and_mass(self, nested):
        # Segment 1: 5 repetitions of mass 2.0; segment 2: 5 reps of 0.25.
        assert nested.period == pytest.approx(15.0)
        assert nested.mass == pytest.approx(5 * 2.0 + 5 * 0.25)

    def test_cumulative_matches_manual(self, nested):
        # At t=3.5 (inside 2nd repetition of inner_a): 1 full rep (2.0)
        # + 1.0 busy (2.0) + 0.5 more busy at rate 2.0 -> wait: local 3.5
        # = rep 1 (mass 2.0) + 1.5 into rep -> busy 1.0 full (2.0) plus
        # idle 0.5 (0) = 4.0.
        assert float(nested.cumulative(3.5)) == pytest.approx(4.0)
        # Start of segment 2 at t=10: mass 10.0.
        assert float(nested.cumulative(10.0)) == pytest.approx(10.0)
        # 0.25 into segment 2: 0.25 * 0.4 = 0.1.
        assert float(nested.cumulative(10.25)) == pytest.approx(10.1)

    def test_inversion_round_trip(self, nested):
        for u in [0.1, 1.999, 2.0, 5.5, 10.0, 10.05, 11.24, nested.mass]:
            tau = float(nested.invert(u))
            assert float(nested.cumulative(tau)) == pytest.approx(
                u, abs=1e-9
            )

    def test_survival_integral_matches_quadrature(self, nested):
        def integrand(t):
            return math.exp(-float(nested.cumulative(t)))

        value, _ = integrate.quad(
            integrand, 0, nested.period, limit=500
        )
        assert nested.survival_integral(nested.period) == pytest.approx(
            value, rel=1e-7
        )

    def test_weighted_integral_matches_quadrature(self, nested):
        def integrand(t):
            return t * math.exp(-float(nested.cumulative(t)))

        value, _ = integrate.quad(
            integrand, 0, nested.period, limit=500
        )
        assert nested.time_weighted_survival_integral(
            nested.period
        ) == pytest.approx(value, rel=1e-7)

    def test_partial_repetition_tail(self):
        inner = PiecewiseHazard.from_segments([(1.0, 1.0), (1.0, 0.0)])
        # 2.5 repetitions: tail covers 1 busy interval's first half... the
        # tail is 1.0 long (half a rep): full busy interval.
        nested = NestedHazard([(5.0, inner)])
        assert nested.mass == pytest.approx(3.0)  # 2 full reps + busy tail

    def test_scaled(self, nested):
        assert nested.scaled(3.0).mass == pytest.approx(3 * nested.mass)

    def test_constant_inner_from_float(self):
        nested = NestedHazard([(4.0, 0.5), (4.0, 0.0)])
        assert nested.mass == pytest.approx(2.0)
        assert float(nested.cumulative(2.0)) == pytest.approx(1.0)

    def test_huge_repetition_counts_stay_exact(self):
        # A microsecond inner cycle repeated for 12 hours: closed forms
        # must not enumerate repetitions.
        inner = PiecewiseHazard.from_segments([(5e-7, 1e-4), (5e-7, 0.0)])
        nested = NestedHazard([(43200.0, inner)])
        reps = 43200.0 / 1e-6
        assert nested.mass == pytest.approx(reps * inner.mass, rel=1e-9)
        value = nested.survival_integral(nested.period)
        # Survival integral of a fast on/off cycle approaches that of the
        # averaged constant hazard (rate 5e-5).
        avg = constant_hazard(5e-5, 43200.0)
        assert value == pytest.approx(avg.survival_integral(43200.0), rel=1e-3)

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            NestedHazard([])

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ProfileError):
            NestedHazard([(0.0, 1.0)])
