"""Tests for register-liveness accounting."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.masking import live_counts_from_intervals
from repro.masking.liveness import live_fraction, merge_register_intervals


class TestLiveCounts:
    def test_single_interval(self):
        counts = live_counts_from_intervals([(2, 5)], 8)
        np.testing.assert_array_equal(counts, [0, 0, 1, 1, 1, 0, 0, 0])

    def test_overlapping_intervals(self):
        counts = live_counts_from_intervals([(0, 4), (2, 6)], 6)
        np.testing.assert_array_equal(counts, [1, 1, 2, 2, 1, 1])

    def test_clipping(self):
        counts = live_counts_from_intervals([(-5, 2), (4, 100)], 6)
        np.testing.assert_array_equal(counts, [1, 1, 0, 0, 1, 1])

    def test_empty_and_degenerate_intervals_ignored(self):
        counts = live_counts_from_intervals([(3, 3), (5, 4)], 6)
        assert counts.sum() == 0

    def test_rejects_bad_cycle_count(self):
        with pytest.raises(TraceError):
            live_counts_from_intervals([], 0)


class TestLiveFraction:
    def test_fraction(self):
        frac = live_fraction([(0, 2), (0, 2)], 4, 4)
        np.testing.assert_allclose(frac, [0.5, 0.5, 0.0, 0.0])

    def test_rejects_overflow(self):
        with pytest.raises(TraceError):
            live_fraction([(0, 2), (0, 2), (0, 2)], 2, 2)

    def test_rejects_bad_register_count(self):
        with pytest.raises(TraceError):
            live_fraction([], 4, 0)


class TestMergeIntervals:
    def test_merge(self):
        merged = merge_register_intervals([[(0, 2), (3, 5)], [(1, 4)]])
        assert merged == [(0, 2), (3, 5), (1, 4)]

    def test_rejects_overlap_within_register(self):
        with pytest.raises(TraceError):
            merge_register_intervals([[(0, 3), (2, 5)]])
