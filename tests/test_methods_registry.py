"""Tests for the estimator registry (repro.methods)."""

import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    SystemModel,
    avf_sofr_mttf,
    first_principles_mttf,
    monte_carlo_mttf,
)
from repro.core.hybrid import hybrid_system_mttf
from repro.errors import ConfigurationError
from repro.methods import (
    MethodConfig,
    available,
    get,
    register_method,
    unregister,
)
from repro.reliability.metrics import MTTFEstimate
from repro.units import SECONDS_PER_DAY

#: The paper's five methods plus the hybrid extension — the acceptance
#: surface of the registry.
EXPECTED_METHODS = (
    "avf",
    "avf_sofr",
    "sofr_only",
    "monte_carlo",
    "first_principles",
    "softarch",
    "hybrid",
)


@pytest.fixture
def system(day_profile):
    return SystemModel(
        [Component("node", 0.5 / SECONDS_PER_DAY, day_profile)]
    )


class TestRegistry:
    def test_all_paper_methods_registered(self):
        for name in EXPECTED_METHODS:
            estimator = get(name)
            assert estimator.name == name

    def test_every_method_estimates(self, system):
        config = MethodConfig(mc=MonteCarloConfig(trials=2_000, seed=1))
        for name in EXPECTED_METHODS:
            estimate = get(name).estimate(system, config)
            assert isinstance(estimate, MTTFEstimate)
            assert estimate.mttf_seconds > 0

    def test_unknown_method_hints_available_names(self):
        with pytest.raises(ConfigurationError, match="avf_sofr"):
            get("no_such_method")

    def test_exact_alias(self):
        assert get("exact").name == "first_principles"

    def test_duplicate_registration_raises(self):
        @register_method("temp_method")
        def temp_method(system, config):
            return MTTFEstimate(mttf_seconds=1.0, method="temp")

        try:
            with pytest.raises(ConfigurationError, match="duplicate"):

                @register_method("temp_method")
                def temp_method_again(system, config):
                    return MTTFEstimate(mttf_seconds=1.0, method="temp")

        finally:
            unregister("temp_method")
        assert "temp_method" not in available()

    def test_registered_method_usable_from_facade(self, system):
        from repro import analyze

        @register_method("constant_year")
        def constant_year(system, config):
            return MTTFEstimate(
                mttf_seconds=365.25 * 86400, method="constant_year"
            )

        try:
            result = (
                analyze(system)
                .using("constant_year")
                .against("exact")
                .run()
            )
            assert result[0].estimates["constant_year"].mttf_seconds == (
                365.25 * 86400
            )
        finally:
            unregister("constant_year")

    def test_capability_flags(self):
        assert get("monte_carlo").is_stochastic
        assert not get("first_principles").is_stochastic
        assert get("avf_sofr").per_component

    def test_avf_supports_only_single_instance(self, day_profile):
        single = SystemModel(
            [Component("a", 1e-6, day_profile)]
        )
        cluster = SystemModel(
            [Component("a", 1e-6, day_profile, multiplicity=4)]
        )
        assert get("avf").supports(single)
        assert not get("avf").supports(cluster)


class TestAdapterEquivalence:
    """Registry adapters must reproduce the seed free functions exactly."""

    def test_deterministic_methods(self, system):
        config = MethodConfig()
        assert get("avf_sofr").estimate(system, config).mttf_seconds == (
            avf_sofr_mttf(system).mttf_seconds
        )
        assert get(
            "first_principles"
        ).estimate(system, config).mttf_seconds == (
            first_principles_mttf(system).mttf_seconds
        )
        assert get("hybrid").estimate(system, config).mttf_seconds == (
            hybrid_system_mttf(system).estimate.mttf_seconds
        )

    def test_monte_carlo_same_seed_same_numbers(self, system):
        mc = MonteCarloConfig(trials=4_000, seed=11)
        via_registry = get("monte_carlo").estimate(
            system, MethodConfig(mc=mc)
        )
        direct = monte_carlo_mttf(system, mc)
        assert via_registry.mttf_seconds == direct.mttf_seconds
        assert via_registry.std_error_seconds == direct.std_error_seconds
