"""Tests for the Monte-Carlo loop-phase conventions."""

import math

import numpy as np
import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    SystemModel,
    exact_component_mttf,
    sample_component_ttf,
    sample_system_ttf,
)
from repro.errors import EstimationError
from repro.masking import busy_idle_profile
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def hot_component(day_profile):
    # Large hazard mass: phase convention matters a lot here.
    return Component("c", 10.0 / SECONDS_PER_DAY, day_profile)


class TestPhaseConfig:
    def test_unknown_phase_rejected(self):
        with pytest.raises(EstimationError):
            MonteCarloConfig(start_phase="noon")

    def test_default_is_zero(self):
        assert MonteCarloConfig().start_phase == "zero"


class TestRandomPhaseInverse:
    def test_differs_from_zero_at_large_mass(self, hot_component):
        zero = sample_component_ttf(
            hot_component, MonteCarloConfig(trials=40_000, seed=1)
        )
        random_phase = sample_component_ttf(
            hot_component,
            MonteCarloConfig(trials=40_000, seed=1, start_phase="random"),
        )
        # Zero phase fails inside the first busy window; random phase
        # waits through the idle night half the time.
        assert random_phase.mean() > 2 * zero.mean()

    def test_agrees_with_zero_at_small_mass(self, day_profile):
        comp = Component("c", 1e-10, day_profile)
        zero = sample_component_ttf(
            comp, MonteCarloConfig(trials=50_000, seed=2)
        )
        random_phase = sample_component_ttf(
            comp,
            MonteCarloConfig(trials=50_000, seed=3, start_phase="random"),
        )
        pooled = math.hypot(
            zero.std(ddof=1) / math.sqrt(zero.size),
            random_phase.std(ddof=1) / math.sqrt(random_phase.size),
        )
        assert abs(zero.mean() - random_phase.mean()) < 5 * pooled

    def test_random_phase_mean_matches_theory(self, hot_component):
        # Exact expectation over a uniform start phase u:
        #   E = (1/L) ∫_0^L e^{Λ(u)} [ I(u) + q·I0/(1-q) ] du
        # with I(u) = ∫_u^L e^{-Λ}, I0 = I(0), q = e^{-Λ(L)}; evaluated
        # here by fine quadrature over the hazard machinery.
        samples = sample_component_ttf(
            hot_component,
            MonteCarloConfig(trials=120_000, seed=4, start_phase="random"),
        )
        intensity = hot_component.intensity
        period = intensity.period
        grid = np.linspace(0.0, period, 200_001)
        lam = np.asarray(intensity.cumulative(grid))
        survival = np.exp(-lam)
        i_total = np.trapezoid(survival, grid)
        # I(u) via reversed cumulative trapezoid.
        step_areas = 0.5 * (survival[1:] + survival[:-1]) * np.diff(grid)
        i_from_u = np.concatenate(
            (np.cumsum(step_areas[::-1])[::-1], [0.0])
        )
        q = math.exp(-intensity.mass)
        e_u = np.exp(lam) * (i_from_u + q * i_total / (1 - q))
        expected = np.trapezoid(e_u, grid) / period
        assert samples.mean() == pytest.approx(expected, rel=0.02)


class TestRandomPhaseArrival:
    def test_arrival_matches_inverse_random_phase(self, hot_component):
        inverse = sample_component_ttf(
            hot_component,
            MonteCarloConfig(trials=30_000, seed=5, start_phase="random"),
        )
        arrival = sample_component_ttf(
            hot_component,
            MonteCarloConfig(
                trials=30_000,
                seed=6,
                method="arrival",
                start_phase="random",
            ),
        )
        pooled = math.hypot(
            inverse.std(ddof=1) / math.sqrt(inverse.size),
            arrival.std(ddof=1) / math.sqrt(arrival.size),
        )
        assert abs(inverse.mean() - arrival.mean()) < 5 * pooled

    def test_system_shares_offsets(self, day_profile):
        # A two-component system must behave like one component with the
        # doubled rate (same workload, shared phase).
        rate = 5.0 / SECONDS_PER_DAY
        system = SystemModel(
            [Component("c", rate, day_profile, multiplicity=2)]
        )
        doubled = Component("d", 2 * rate, day_profile)
        sys_samples = sample_system_ttf(
            system,
            MonteCarloConfig(
                trials=30_000, seed=7, method="arrival",
                start_phase="random",
            ),
        )
        comp_samples = sample_component_ttf(
            doubled,
            MonteCarloConfig(
                trials=30_000, seed=8, method="arrival",
                start_phase="random",
            ),
        )
        pooled = math.hypot(
            sys_samples.std(ddof=1) / math.sqrt(sys_samples.size),
            comp_samples.std(ddof=1) / math.sqrt(comp_samples.size),
        )
        assert abs(sys_samples.mean() - comp_samples.mean()) < 5 * pooled
