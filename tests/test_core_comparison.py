"""Tests for the method-comparison apparatus (repro.core.comparison)."""

import pytest

from repro.core import Component, MonteCarloConfig, SystemModel, compare_methods
from repro.core.comparison import avf_step_comparison
from repro.masking import busy_idle_profile
from repro.reliability.metrics import relative_error, signed_relative_error
from repro.errors import EstimationError
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def small_system(day_profile):
    return SystemModel(
        [Component("node", 1e-7 / SECONDS_PER_DAY, day_profile)]
    )


@pytest.fixture
def stressed_system(day_profile):
    return SystemModel(
        [
            Component(
                "node",
                2.0 / SECONDS_PER_DAY,
                day_profile,
                multiplicity=100,
            )
        ]
    )


class TestCompareMethods:
    def test_exact_reference_safe_regime(self, small_system):
        comparison = compare_methods(
            small_system,
            label="safe",
            reference="exact",
            mc_config=MonteCarloConfig(trials=2_000, seed=1),
        )
        assert comparison.abs_error("avf_sofr") < 1e-6
        assert comparison.abs_error("sofr_only") < 1e-6
        assert comparison.abs_error("first_principles") == 0.0

    def test_stressed_regime_flags_avf_sofr(self, stressed_system):
        comparison = compare_methods(
            stressed_system,
            reference="exact",
            mc_config=MonteCarloConfig(trials=2_000, seed=1),
        )
        assert comparison.abs_error("avf_sofr") > 0.2

    def test_softarch_included_on_request(self, small_system):
        comparison = compare_methods(
            small_system,
            reference="exact",
            include_softarch=True,
            mc_config=MonteCarloConfig(trials=2_000, seed=1),
        )
        assert "softarch" in comparison.method_names
        assert comparison.abs_error("softarch") < 1e-6

    def test_monte_carlo_reference(self, small_system):
        comparison = compare_methods(
            small_system,
            reference="monte_carlo",
            mc_config=MonteCarloConfig(trials=30_000, seed=2),
        )
        # MC noise only: both methods within ~1%.
        assert comparison.abs_error("avf_sofr") < 0.02

    def test_unknown_reference_rejected(self, small_system):
        with pytest.raises(ValueError):
            compare_methods(small_system, reference="oracle")

    def test_error_signs_exposed(self, stressed_system):
        comparison = compare_methods(
            stressed_system,
            reference="exact",
            mc_config=MonteCarloConfig(trials=2_000, seed=1),
        )
        # Front-loaded day workload: AVF+SOFR overestimates (positive).
        assert comparison.error("avf_sofr") > 0


class TestAvfStepComparison:
    def test_returns_estimate_and_error(self, day_profile):
        rate = 1.0 / SECONDS_PER_DAY
        from repro.core import exact_component_mttf

        exact = exact_component_mttf(rate, day_profile)
        estimate, error = avf_step_comparison(rate, day_profile, exact)
        assert estimate == pytest.approx(2 * SECONDS_PER_DAY / 1.0)
        assert error == pytest.approx((estimate - exact) / exact)

    def test_rejects_infinite(self, day_profile):
        with pytest.raises(ValueError):
            avf_step_comparison(0.0, day_profile, 100.0)


class TestErrorMetrics:
    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_signed_relative_error(self):
        assert signed_relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert signed_relative_error(90.0, 100.0) == pytest.approx(-0.1)

    def test_reference_validation(self):
        with pytest.raises(EstimationError):
            relative_error(1.0, 0.0)
        with pytest.raises(EstimationError):
            signed_relative_error(1.0, float("inf"))
