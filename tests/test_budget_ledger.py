"""Cross-shard budget ledger tests (PR-5 tentpole).

Covers the ledger file discipline (torn-record skip, deterministic
duplicate rejection), the pure allocation policy, and the acceptance
bars: a ledger-coordinated fleet's merged ResultSet is bit-identical
across worker counts and executors, a sequential replay of the
completed ledger reproduces the live fleet bit-for-bit, total granted
trials never exceed total freed trials, and ``merge`` refuses to mix
``+xshard`` artifacts with plain or ``+realloc`` shards.
"""

import dataclasses
import threading

import pytest

from repro.core import (
    Component,
    MonteCarloConfig,
    StoppingRule,
    SystemModel,
    allocate_grants,
    extension_chunk_config,
    extension_chunk_configs,
)
from repro.errors import ConfigurationError, EstimationError
from repro.methods import (
    BudgetLedger,
    LedgerState,
    evaluate_design_space,
    ledger_path,
    merge_result_sets,
)
from repro.methods.cache import append_record, scan_records
from repro.methods.progress import BUDGET_CLAIMED, ProgressEvent
from repro.units import SECONDS_PER_DAY

#: Absolute-precision rule sized so the large-MTTF C=2 point exhausts
#: its base budget while small-MTTF points stop after one chunk — the
#: configuration where freed budget actually crosses shards.
STRAGGLER_MC = MonteCarloConfig(
    trials=8_000,
    seed=3,
    chunks=8,
    stopping=StoppingRule(target_ci_halfwidth=250.0),
)


@pytest.fixture
def cluster_space(day_profile):
    rate = 2.0 / SECONDS_PER_DAY
    return [
        (
            f"C={c}",
            SystemModel(
                [Component("node", rate, day_profile, multiplicity=c)]
            ),
        )
        for c in (2, 8, 100, 300, 1000)
    ]


def run_fleet(
    space,
    ledger_file,
    shards=2,
    replay=False,
    workers=(1, 1),
    executors=("thread", "thread"),
    progress=None,
):
    """Run every shard of one ledger fleet; co-running unless replaying."""
    results = [None] * shards
    errors = []

    def one(i):
        results[i] = evaluate_design_space(
            space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(i, shards),
            workers=workers[i % len(workers)],
            executor=executors[i % len(executors)],
            pipeline_methods=True,
            reallocate_budget=True,
            progress=progress,
            budget_ledger=BudgetLedger(
                ledger_file,
                shard=(i, shards),
                replay=replay,
                poll_interval=0.01,
                timeout=120.0,
            ),
        )

    def guarded(i):
        try:
            one(i)
        except Exception as error:  # re-raised in the test thread
            errors.append(error)

    if replay:
        # Replay follows the recorded rounds with no waiting, so the
        # shards rerun sequentially, in any order.
        for index in reversed(range(shards)):
            one(index)
    else:
        threads = [
            threading.Thread(target=guarded, args=(index,))
            for index in range(shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
    return results


class TestRecordDiscipline:
    def test_append_scan_round_trip(self, tmp_path):
        path = tmp_path / "log.ledger"
        records = [{"kind": "a", "n": 1}, {"kind": "b", "deficit": 1.75}]
        for record in records:
            append_record(path, record)
        assert scan_records(path) == records

    def test_missing_file_reads_empty(self, tmp_path):
        assert scan_records(tmp_path / "absent.ledger") == []

    def test_torn_tail_is_skipped_and_resynchronized(self, tmp_path):
        # A writer dying mid-append leaves a torn last record; other
        # shards must skip it without error, and the next append's
        # leading newline must keep later records readable.
        path = tmp_path / "log.ledger"
        append_record(path, {"kind": "a"})
        with open(path, "ab") as handle:
            handle.write(b'\n{"kind": "torn", "trials": 12')
        assert scan_records(path) == [{"kind": "a"}]
        append_record(path, {"kind": "b"})
        assert scan_records(path) == [{"kind": "a"}, {"kind": "b"}]

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "log.ledger"
        append_record(path, {"kind": "a"})
        with open(path, "ab") as handle:
            handle.write(b"\nnot json at all\n")
        append_record(path, {"kind": "b"})
        assert scan_records(path) == [{"kind": "a"}, {"kind": "b"}]

    def test_duplicate_claims_rejected_first_wins(self, tmp_path):
        # A crashed-and-rerun shard may re-append a budget-claimed
        # record; every reader must resolve the duplicate the same way
        # (first occurrence in file order wins).
        path = tmp_path / "log.ledger"
        claim = {
            "kind": "budget-claimed", "shard": 0, "round": 0,
            "index": 2, "trials": 500, "chunks": 1,
        }
        append_record(path, claim)
        append_record(path, {**claim, "trials": 9_999})
        for _scan in range(2):
            state = LedgerState.scan(path, 2)
            assert state.claims[(0, 0, 2)] == 500
            assert state.duplicates == 1

    def test_malformed_record_fields_are_skipped(self, tmp_path):
        path = tmp_path / "log.ledger"
        append_record(path, {"kind": "budget-freed", "shard": 0})  # no round
        append_record(
            path,
            {"kind": "budget-freed", "shard": 0, "round": 0, "trials": 7},
        )
        state = LedgerState.scan(path, 1)
        assert state.rounds[(0, 0)].freed == 7


class TestAllocateGrants:
    def test_round_robin_worst_deficit_first(self):
        grants = allocate_grants(
            2_500, [(1.2, 4), (3.0, 1), (1.2, 2)], 1_000
        )
        # Ranked 1 (3.0), 2 (1.2, lower index), 4; pool spent exactly,
        # final grant partial.
        assert grants == {1: [1_000], 2: [1_000], 4: [500]}

    def test_empty_pool_or_demands(self):
        assert allocate_grants(0, [(1.0, 0)], 100) == {}
        assert allocate_grants(100, [], 100) == {}

    def test_rejects_bad_unit(self):
        with pytest.raises(EstimationError, match="unit"):
            allocate_grants(100, [(1.0, 0)], 0)

    def test_extension_chunk_configs_matches_singular(self):
        config = MonteCarloConfig(trials=8_000, seed=3, chunks=4)
        plural = extension_chunk_configs(config, 4, [2_000, 500])
        assert plural == [
            extension_chunk_config(config, 4, 2_000),
            extension_chunk_config(config, 5, 500),
        ]


class TestLedgerValidation:
    def test_run_id_validation(self, tmp_path):
        assert ledger_path(tmp_path, "run-1.a").name == (
            "xshard-run-1.a.ledger"
        )
        with pytest.raises(ConfigurationError, match="run id"):
            ledger_path(tmp_path, "bad/run")

    def test_requires_matching_shard(self, cluster_space, tmp_path):
        ledger = BudgetLedger(tmp_path / "a.ledger", shard=(0, 2))
        with pytest.raises(ConfigurationError, match="shard"):
            evaluate_design_space(
                cluster_space,
                methods=["first_principles"],
                mc_config=STRAGGLER_MC,
                shard=(1, 2),
                reallocate_budget=True,
                budget_ledger=ledger,
            )

    def test_requires_reallocate_and_adaptive_reference(
        self, cluster_space, tmp_path
    ):
        ledger = BudgetLedger(tmp_path / "a.ledger", shard=(0, 1))
        with pytest.raises(ConfigurationError, match="reallocate"):
            evaluate_design_space(
                cluster_space,
                methods=["first_principles"],
                mc_config=STRAGGLER_MC,
                shard=(0, 1),
                budget_ledger=ledger,
            )
        with pytest.raises(ConfigurationError, match="adaptive"):
            evaluate_design_space(
                cluster_space,
                methods=["first_principles"],
                mc_config=MonteCarloConfig(trials=1_000, chunks=4),
                shard=(0, 1),
                reallocate_budget=True,
                budget_ledger=ledger,
            )

    def test_live_rerun_on_used_ledger_is_rejected(
        self, cluster_space, tmp_path
    ):
        path = tmp_path / "fleet.ledger"
        run_fleet(cluster_space, path, shards=1)
        with pytest.raises(ConfigurationError, match="fresh run id"):
            run_fleet(cluster_space, path, shards=1)

    def test_mismatched_sibling_config_is_rejected(
        self, cluster_space, tmp_path
    ):
        path = tmp_path / "fleet.ledger"
        run_fleet(cluster_space, path, shards=1)
        # A second shard joining with a different method set must fail
        # loudly instead of coordinating garbage.
        with pytest.raises(ConfigurationError, match="configuration"):
            evaluate_design_space(
                cluster_space,
                methods=["sofr_only"],
                mc_config=STRAGGLER_MC,
                shard=(0, 1),
                reallocate_budget=True,
                budget_ledger=BudgetLedger(
                    path, shard=(0, 1), replay=True
                ),
            )

    def test_rendezvous_times_out_without_siblings(
        self, cluster_space, tmp_path
    ):
        # A fleet needs its shards co-running: a lone shard of a
        # 2-shard fleet must fail loudly, never hang or silently
        # degrade into an uncoordinated run.
        ledger = BudgetLedger(
            tmp_path / "lonely.ledger",
            shard=(0, 2),
            poll_interval=0.01,
            timeout=0.3,
        )
        with pytest.raises(EstimationError, match="co-running"):
            evaluate_design_space(
                cluster_space,
                methods=["first_principles"],
                mc_config=STRAGGLER_MC,
                shard=(0, 2),
                reallocate_budget=True,
                budget_ledger=ledger,
            )

    def test_torn_tail_in_live_ledger_is_tolerated(
        self, cluster_space, tmp_path
    ):
        # A torn record left by a previous writer's crash must not
        # break a live shard scanning the file.
        path = tmp_path / "fleet.ledger"
        with open(path, "wb") as handle:
            handle.write(b'{"kind": "shard-hel')
        (result,) = run_fleet(cluster_space, path, shards=1)
        assert len(result) == len(cluster_space)


class TestFleetCoordination:
    def test_budget_crosses_shards(self, cluster_space, tmp_path):
        # Shard 0 owns the sole straggler (C=2, global index 0); the
        # budget freed by shard 1's early stoppers must reach it, so
        # the fleet gives it strictly more trials than shard-local
        # re-allocation could.
        local = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(0, 2),
            reallocate_budget=True,
        )
        events: list[ProgressEvent] = []
        shard0, shard1 = run_fleet(
            cluster_space, tmp_path / "fleet.ledger", progress=events.append
        )
        assert shard0.reference_trials()["C=2"] > (
            local.reference_trials()["C=2"]
        )
        claims = [e for e in events if e.kind == BUDGET_CLAIMED]
        assert claims and {e.label for e in claims} == {"C=2"}

    def test_fleet_conserves_and_audits_budget(
        self, cluster_space, tmp_path
    ):
        path = tmp_path / "fleet.ledger"
        shard0, shard1 = run_fleet(cluster_space, path)
        merged = merge_result_sets([shard0, shard1])
        assert sum(merged.reference_trials().values()) <= (
            STRAGGLER_MC.trials * len(cluster_space)
        )
        totals = BudgetLedger(path, shard=(0, 2), replay=True).audit()
        assert 0 < totals["claimed_trials"] <= totals["freed_trials"]
        state = LedgerState.scan(path, 2)
        assert state.duplicates == 0
        assert set(state.hellos) == {0, 1}

    def test_merged_fleet_bit_identical_across_workers_executors(
        self, cluster_space, tmp_path
    ):
        first = merge_result_sets(
            run_fleet(cluster_space, tmp_path / "a.ledger")
        )
        second = merge_result_sets(
            run_fleet(
                cluster_space,
                tmp_path / "b.ledger",
                workers=(3, 2),
                executors=("thread", "process"),
            )
        )
        assert second == first
        assert first.mc_token.endswith("+xshard")

    def test_replay_reproduces_the_live_fleet(
        self, cluster_space, tmp_path
    ):
        path = tmp_path / "fleet.ledger"
        live = merge_result_sets(run_fleet(cluster_space, path))
        replayed = merge_result_sets(
            run_fleet(cluster_space, path, replay=True)
        )
        assert replayed == live

    def test_replay_of_divergent_config_fails_loudly(
        self, cluster_space, tmp_path
    ):
        path = tmp_path / "fleet.ledger"
        run_fleet(cluster_space, path)
        with pytest.raises(
            (ConfigurationError, EstimationError), match="replay"
        ):
            evaluate_design_space(
                cluster_space,
                methods=["first_principles"],
                mc_config=dataclasses.replace(STRAGGLER_MC, seed=99),
                shard=(0, 2),
                reallocate_budget=True,
                budget_ledger=BudgetLedger(
                    path, shard=(0, 2), replay=True
                ),
            )

    def test_single_shard_fleet_matches_local_reallocation(
        self, cluster_space, tmp_path
    ):
        # With n=1 the global pool and demand set equal the local ones,
        # so the ledger schedule degenerates to PR-4 re-allocation
        # exactly; only the mc_token tag differs.
        local = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(0, 1),
            reallocate_budget=True,
        )
        (fleet,) = run_fleet(
            cluster_space, tmp_path / "solo.ledger", shards=1
        )
        assert fleet.comparisons == local.comparisons
        assert local.mc_token.endswith("+realloc")
        assert fleet.mc_token.endswith("+xshard")

    def test_merge_refuses_mixing_xshard_with_realloc_or_plain(
        self, cluster_space, tmp_path
    ):
        (xshard0, _xshard1) = run_fleet(
            cluster_space, tmp_path / "fleet.ledger"
        )
        realloc1 = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(1, 2),
            reallocate_budget=True,
        )
        plain1 = evaluate_design_space(
            cluster_space,
            methods=["first_principles"],
            mc_config=STRAGGLER_MC,
            shard=(1, 2),
        )
        for other in (realloc1, plain1):
            with pytest.raises(ConfigurationError, match="different runs"):
                merge_result_sets([xshard0, other])

    def test_ledger_records_are_auditable_json(
        self, cluster_space, tmp_path
    ):
        path = tmp_path / "fleet.ledger"
        run_fleet(cluster_space, path)
        records = scan_records(path)
        kinds = {record["kind"] for record in records}
        assert {
            "shard-hello", "point-open", "point-converged",
            "budget-freed", "budget-claimed", "shard-barrier",
            "shard-done",
        } <= kinds
        # Every record is one self-describing JSON object per line.
        claimed = sum(
            r["trials"] for r in records if r["kind"] == "budget-claimed"
        )
        freed = sum(
            r["trials"] for r in records if r["kind"] == "budget-freed"
        )
        assert 0 < claimed <= freed
        # point-converged audit covers every point in the fleet.
        converged = {
            r["index"] for r in records if r["kind"] == "point-converged"
        }
        assert converged == set(range(len(cluster_space)))
