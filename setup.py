"""Setup shim.

The project is configured in pyproject.toml; this file exists so that
environments without the ``wheel`` package (offline CI) can fall back to
``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
